//! VSCC: the validation system chaincode run per transaction at commit time.

use std::collections::HashMap;

use fabricsim_crypto::PublicKey;
use fabricsim_msp::{Certificate, Msp};
use fabricsim_types::{Block, ClientId, Principal, Transaction, ValidationCode};

use crate::peer::PeerConfig;

/// Outcome of VSCC for one transaction (before MVCC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VsccVerdict {
    /// Eligible for MVCC validation.
    Pass,
    /// Rejected with the given code.
    Fail(ValidationCode),
}

/// Summary of a committed block.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommitStats {
    /// Transactions flagged valid.
    pub valid: usize,
    /// Transactions invalidated by MVCC read conflicts.
    pub mvcc_conflicts: usize,
    /// Transactions invalidated by endorsement-policy failure.
    pub policy_failures: usize,
    /// Transactions invalidated by bad signatures (creator or endorser).
    pub bad_signatures: usize,
    /// Transactions invalidated as duplicates.
    pub duplicates: usize,
    /// Transactions invalidated as malformed.
    pub malformed: usize,
}

impl CommitStats {
    /// Aggregates validation flags into counts.
    pub fn from_flags(flags: &[ValidationCode]) -> Self {
        let mut s = CommitStats::default();
        for f in flags {
            match f {
                ValidationCode::Valid => s.valid += 1,
                ValidationCode::MvccReadConflict => s.mvcc_conflicts += 1,
                ValidationCode::EndorsementPolicyFailure => s.policy_failures += 1,
                ValidationCode::BadEndorserSignature | ValidationCode::BadCreatorSignature => {
                    s.bad_signatures += 1
                }
                ValidationCode::DuplicateTxId => s.duplicates += 1,
                ValidationCode::BadPayload => s.malformed += 1,
            }
        }
        s
    }

    /// Total transactions covered.
    pub fn total(&self) -> usize {
        self.valid
            + self.mvcc_conflicts
            + self.policy_failures
            + self.bad_signatures
            + self.duplicates
            + self.malformed
    }
}

/// Runs VSCC over every transaction of a block, producing the pre-flags the
/// ledger's MVCC pass consumes (`None` = eligible, `Some(code)` = rejected).
pub fn vscc_block(
    block: &Block,
    config: &PeerConfig,
    msp: &Msp,
    client_certs: &HashMap<ClientId, Certificate>,
    endorser_keys: &HashMap<Principal, Vec<PublicKey>>,
) -> Vec<Option<ValidationCode>> {
    block
        .transactions
        .iter()
        .map(
            |tx| match vscc_tx(tx, config, msp, client_certs, endorser_keys) {
                VsccVerdict::Pass => None,
                VsccVerdict::Fail(code) => Some(code),
            },
        )
        .collect()
}

/// [`vscc_block`] with the per-tx checks fanned out over a pool of `workers`
/// scoped threads (the VSCC stage of [`crate::ValidationPipeline`]). Returns
/// flags in transaction order, bit-for-bit identical to the serial path
/// regardless of scheduling; `workers <= 1` runs inline without spawning.
pub fn vscc_block_pooled(
    block: &Block,
    config: &PeerConfig,
    msp: &Msp,
    client_certs: &HashMap<ClientId, Certificate>,
    endorser_keys: &HashMap<Principal, Vec<PublicKey>>,
    workers: usize,
) -> Vec<Option<ValidationCode>> {
    let mut flags = vec![None; block.transactions.len()];
    crate::ValidationPipeline::new(workers).vscc_flags(
        block,
        config,
        msp,
        client_certs,
        endorser_keys,
        &mut flags,
    );
    flags
}

/// VSCC for a single transaction: payload shape, creator signature, every
/// endorsement signature (authenticated against registered endorser keys),
/// and endorsement-policy satisfaction.
pub fn vscc_tx(
    tx: &Transaction,
    config: &PeerConfig,
    msp: &Msp,
    client_certs: &HashMap<ClientId, Certificate>,
    endorser_keys: &HashMap<Principal, Vec<PublicKey>>,
) -> VsccVerdict {
    // Shape checks.
    if tx.channel != config.channel
        || tx.chaincode.is_empty()
        || (tx.rw_set.reads.is_empty() && tx.rw_set.writes.is_empty() && tx.payload.is_empty())
    {
        return VsccVerdict::Fail(ValidationCode::BadPayload);
    }
    // Creator signature over the envelope.
    let Some(cert) = client_certs.get(&tx.creator) else {
        return VsccVerdict::Fail(ValidationCode::BadCreatorSignature);
    };
    if msp.verify(cert, &tx.signed_bytes(), &tx.signature).is_err() {
        return VsccVerdict::Fail(ValidationCode::BadCreatorSignature);
    }
    // Endorsement signatures: all endorsers signed the same response bytes,
    // and each key must belong to a registered endorser of that principal.
    let response_bytes = tx.response_bytes();
    for e in &tx.endorsements {
        let known = endorser_keys
            .get(&e.endorser)
            .is_some_and(|keys| keys.contains(&e.endorser_key));
        if !known || !e.endorser_key.verify(&response_bytes, &e.signature) {
            return VsccVerdict::Fail(ValidationCode::BadEndorserSignature);
        }
    }
    // Endorsement policy.
    let principals: Vec<Principal> = tx.endorsements.iter().map(|e| e.endorser.clone()).collect();
    if !config.endorsement_policy.is_satisfied_by(principals.iter()) {
        return VsccVerdict::Fail(ValidationCode::EndorsementPolicyFailure);
    }
    VsccVerdict::Pass
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fixture, Fixture};
    use fabricsim_crypto::KeyPair;
    use fabricsim_policy::Policy;
    use fabricsim_types::{ChannelId, RwSet};

    fn endorsed_tx(f: &Fixture, endorser_indices: &[usize]) -> Transaction {
        crate::testutil::endorsed_tx(f, 7, endorser_indices)
    }

    fn verdict(f: &Fixture, tx: &Transaction) -> VsccVerdict {
        vscc_tx(tx, &f.config, &f.msp, &f.client_certs, &f.endorser_keys)
    }

    #[test]
    fn valid_tx_passes() {
        let f = fixture(Policy::or_of_orgs(3), 3);
        assert_eq!(verdict(&f, &endorsed_tx(&f, &[0])), VsccVerdict::Pass);
    }

    #[test]
    fn and_policy_needs_all_endorsers() {
        let f = fixture(Policy::and_of_orgs(3), 3);
        assert_eq!(
            verdict(&f, &endorsed_tx(&f, &[0, 1])),
            VsccVerdict::Fail(ValidationCode::EndorsementPolicyFailure)
        );
        assert_eq!(verdict(&f, &endorsed_tx(&f, &[0, 1, 2])), VsccVerdict::Pass);
    }

    #[test]
    fn tampered_envelope_fails_creator_signature() {
        let f = fixture(Policy::or_of_orgs(1), 1);
        let mut tx = endorsed_tx(&f, &[0]);
        tx.payload = b"injected".to_vec();
        assert_eq!(
            verdict(&f, &tx),
            VsccVerdict::Fail(ValidationCode::BadCreatorSignature)
        );
    }

    #[test]
    fn forged_endorsement_fails() {
        let f = fixture(Policy::or_of_orgs(1), 1);
        let mut tx = endorsed_tx(&f, &[0]);
        // Forge: sign with an unregistered key claiming Org1.peer.
        let rogue = KeyPair::from_seed(b"rogue");
        tx.endorsements[0].endorser_key = rogue.public;
        tx.endorsements[0].signature = rogue.sign(&tx.response_bytes());
        tx.signature = f.client.sign(&tx.signed_bytes());
        assert_eq!(
            verdict(&f, &tx),
            VsccVerdict::Fail(ValidationCode::BadEndorserSignature)
        );
    }

    #[test]
    fn endorsement_over_different_rwset_fails() {
        let f = fixture(Policy::or_of_orgs(1), 1);
        let mut tx = endorsed_tx(&f, &[0]);
        // The endorser signed the original rw-set; mutate it and re-sign the
        // envelope only.
        tx.rw_set.record_write("other", Some(vec![9]));
        tx.signature = f.client.sign(&tx.signed_bytes());
        assert_eq!(
            verdict(&f, &tx),
            VsccVerdict::Fail(ValidationCode::BadEndorserSignature)
        );
    }

    #[test]
    fn empty_tx_is_bad_payload() {
        let f = fixture(Policy::or_of_orgs(1), 1);
        let mut tx = endorsed_tx(&f, &[0]);
        tx.rw_set = RwSet::new();
        tx.payload = Vec::new();
        tx.signature = f.client.sign(&tx.signed_bytes());
        assert_eq!(
            verdict(&f, &tx),
            VsccVerdict::Fail(ValidationCode::BadPayload)
        );
    }

    #[test]
    fn wrong_channel_is_bad_payload() {
        let f = fixture(Policy::or_of_orgs(1), 1);
        let mut tx = endorsed_tx(&f, &[0]);
        tx.channel = ChannelId("other".into());
        tx.signature = f.client.sign(&tx.signed_bytes());
        assert_eq!(
            verdict(&f, &tx),
            VsccVerdict::Fail(ValidationCode::BadPayload)
        );
    }

    #[test]
    fn unknown_creator_fails() {
        let f = fixture(Policy::or_of_orgs(1), 1);
        let mut tx = endorsed_tx(&f, &[0]);
        tx.creator = ClientId(42);
        assert_eq!(
            verdict(&f, &tx),
            VsccVerdict::Fail(ValidationCode::BadCreatorSignature)
        );
    }

    #[test]
    fn stats_aggregate() {
        let flags = [
            ValidationCode::Valid,
            ValidationCode::Valid,
            ValidationCode::MvccReadConflict,
            ValidationCode::EndorsementPolicyFailure,
            ValidationCode::BadEndorserSignature,
            ValidationCode::DuplicateTxId,
            ValidationCode::BadPayload,
        ];
        let s = CommitStats::from_flags(&flags);
        assert_eq!(s.valid, 2);
        assert_eq!(s.mvcc_conflicts, 1);
        assert_eq!(s.policy_failures, 1);
        assert_eq!(s.bad_signatures, 1);
        assert_eq!(s.duplicates, 1);
        assert_eq!(s.malformed, 1);
        assert_eq!(s.total(), 7);
    }
}
