//! Shared fixtures for the committer / validation-pipeline tests: a CA, one
//! client, a set of endorsers, and a builder for fully signed transactions.

use std::collections::HashMap;

use fabricsim_crypto::{KeyPair, PublicKey};
use fabricsim_msp::{Certificate, CertificateAuthority, Msp, SigningIdentity};
use fabricsim_policy::Policy;
use fabricsim_types::{
    ChannelId, ClientId, Endorsement, OrgId, Principal, Proposal, ProposalResponse, RwSet,
    Transaction,
};

use crate::peer::PeerConfig;

pub(crate) struct Fixture {
    pub(crate) config: PeerConfig,
    pub(crate) msp: Msp,
    pub(crate) client_certs: HashMap<ClientId, Certificate>,
    pub(crate) endorser_keys: HashMap<Principal, Vec<PublicKey>>,
    pub(crate) client: SigningIdentity,
    pub(crate) endorsers: Vec<SigningIdentity>,
}

pub(crate) fn fixture(policy: Policy, n_endorsers: u32) -> Fixture {
    let ca = CertificateAuthority::new("ca", 1);
    let client = ca.enroll(
        Principal {
            org: OrgId(1),
            role: "client".into(),
        },
        "client0",
    );
    let endorsers: Vec<_> = (1..=n_endorsers)
        .map(|i| ca.enroll(Principal::peer(OrgId(i)), &format!("peer{i}")))
        .collect();
    let mut endorser_keys: HashMap<Principal, Vec<PublicKey>> = HashMap::new();
    for e in &endorsers {
        endorser_keys
            .entry(e.principal().clone())
            .or_default()
            .push(e.certificate().public_key);
    }
    Fixture {
        config: PeerConfig {
            channel: ChannelId::default_channel(),
            endorsement_policy: policy,
            is_endorser: false,
            validator_pool_size: 1,
        },
        msp: Msp::new(ca.root_of_trust()),
        client_certs: HashMap::from([(ClientId(0), client.certificate().clone())]),
        endorser_keys,
        client,
        endorsers,
    }
}

/// A fully signed transaction with `nonce`-derived id, endorsed by the
/// fixture endorsers at `endorser_indices`.
pub(crate) fn endorsed_tx(f: &Fixture, nonce: u64, endorser_indices: &[usize]) -> Transaction {
    let creator = ClientId(0);
    let tx_id = Proposal::derive_tx_id(creator, nonce);
    let mut rw = RwSet::new();
    rw.record_write("k", Some(vec![1]));
    let resp = ProposalResponse::signed_bytes(tx_id, &rw, b"");
    let endorsements = endorser_indices
        .iter()
        .map(|&i| Endorsement {
            endorser: f.endorsers[i].principal().clone(),
            endorser_key: f.endorsers[i].certificate().public_key,
            signature: f.endorsers[i].sign(&resp),
        })
        .collect();
    let mut tx = Transaction {
        tx_id,
        channel: ChannelId::default_channel(),
        chaincode: "kv".into(),
        rw_set: rw,
        payload: Vec::new(),
        endorsements,
        creator,
        signature: KeyPair::from_seed(b"tmp").sign(b"x"),
    };
    tx.signature = f.client.sign(&tx.signed_bytes());
    tx
}
