//! The staged validation pipeline: block checks → parallel VSCC → serial
//! MVCC + commit.
//!
//! The paper finds the validate phase to be the system bottleneck, and the
//! follow-up literature (Javaid et al., *Optimizing Validation Phase of
//! Hyperledger Fabric*; Thakkar et al.) shows why the fix is architectural:
//! per-transaction VSCC (signature checks + policy evaluation) is
//! embarrassingly parallel, while the MVCC read-set check and the
//! state/blockstore commit must stay serial to preserve block order. This
//! module is the single source of truth for that decomposition — the
//! simulation layer models the same three stages as DES stations
//! (`peer.vscc`, `peer.commit`).
//!
//! Determinism contract: for any `validator_pool_size`, the flags come back
//! **in transaction order** and are **bit-for-bit identical** to the serial
//! path. Workers write into disjoint, tx-indexed chunks of the output, so the
//! result never depends on thread scheduling; with a pool of 1 no threads are
//! spawned at all.

use std::collections::{HashMap, HashSet};

use fabricsim_crypto::PublicKey;
use fabricsim_msp::{Certificate, Msp};
use fabricsim_types::{Block, ClientId, Principal, ValidationCode};

use crate::committer::{vscc_tx, VsccVerdict};
use crate::peer::PeerConfig;

/// The committer's staged validation pipeline.
///
/// Stages (paper §II, "validate phase"):
/// 1. **Block checks** ([`ValidationPipeline::block_checks`]): intra-block
///    transaction-id deduplication — a duplicated id is marked
///    `DUPLICATE_TXID` on every occurrence after the first, as in Fabric.
/// 2. **VSCC** ([`ValidationPipeline::vscc_flags`]): per-transaction creator
///    signature, endorsement signatures and endorsement-policy evaluation,
///    fanned out over a [`std::thread::scope`] worker pool of
///    `pool_size` threads.
/// 3. **MVCC + commit**: serial; owned by `fabricsim_ledger::Ledger`
///    (`mvcc_flags` then `commit`), composed by `Peer::validate_and_commit`.
#[derive(Debug, Clone, Copy)]
pub struct ValidationPipeline {
    pool_size: usize,
}

impl ValidationPipeline {
    /// Creates a pipeline whose VSCC stage uses `pool_size` workers
    /// (0 is treated as 1 = the serial stock-Fabric path).
    pub fn new(pool_size: usize) -> Self {
        ValidationPipeline {
            pool_size: pool_size.max(1),
        }
    }

    /// The VSCC worker-pool size.
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Stage 1: block-level checks. Flags every transaction whose id already
    /// appeared earlier in the same block (`None` = still eligible).
    pub fn block_checks(&self, block: &Block) -> Vec<Option<ValidationCode>> {
        let mut seen = HashSet::with_capacity(block.transactions.len());
        block
            .transactions
            .iter()
            .map(|tx| {
                if seen.insert(tx.tx_id) {
                    None
                } else {
                    Some(ValidationCode::DuplicateTxId)
                }
            })
            .collect()
    }

    /// Stage 2: runs VSCC for every transaction not already flagged by stage
    /// 1, writing results into `flags` in transaction order.
    pub fn vscc_flags(
        &self,
        block: &Block,
        config: &PeerConfig,
        msp: &Msp,
        client_certs: &HashMap<ClientId, Certificate>,
        endorser_keys: &HashMap<Principal, Vec<PublicKey>>,
        flags: &mut [Option<ValidationCode>],
    ) {
        assert_eq!(
            flags.len(),
            block.transactions.len(),
            "one flag slot per transaction"
        );
        let n = block.transactions.len();
        // Live-plane accounting: flags set before this stage were block-level
        // rejects, not VSCC work, so count only the slots still eligible.
        let eligible = flags.iter().filter(|f| f.is_none()).count();
        let rejected_before = n - eligible;
        let workers = self.pool_size.min(n.max(1));
        let run = |out: &mut [Option<ValidationCode>], txs: &[fabricsim_types::Transaction]| {
            for (slot, tx) in out.iter_mut().zip(txs) {
                if slot.is_none() {
                    *slot = match vscc_tx(tx, config, msp, client_certs, endorser_keys) {
                        VsccVerdict::Pass => None,
                        VsccVerdict::Fail(code) => Some(code),
                    };
                }
            }
        };
        if workers <= 1 {
            run(flags, &block.transactions);
        } else {
            // Each worker owns a disjoint tx-indexed chunk of the output, so
            // the merged result is independent of scheduling order.
            let chunk = n.div_ceil(workers);
            std::thread::scope(|s| {
                for (out, txs) in flags
                    .chunks_mut(chunk)
                    .zip(block.transactions.chunks(chunk))
                {
                    s.spawn(move || run(out, txs));
                }
            });
        }
        if let Some(m) = crate::metrics::metrics() {
            let rejected_after = flags.iter().filter(|f| f.is_some()).count();
            m.vscc_blocks.inc();
            m.vscc_checks.add(eligible as u64);
            m.vscc_rejects
                .add((rejected_after - rejected_before) as u64);
        }
    }

    /// Stages 1 + 2 composed: the pre-commit flags the ledger's MVCC stage
    /// consumes (`None` = eligible, `Some(code)` = rejected).
    pub fn pre_commit_flags(
        &self,
        block: &Block,
        config: &PeerConfig,
        msp: &Msp,
        client_certs: &HashMap<ClientId, Certificate>,
        endorser_keys: &HashMap<Principal, Vec<PublicKey>>,
    ) -> Vec<Option<ValidationCode>> {
        let mut flags = self.block_checks(block);
        self.vscc_flags(block, config, msp, client_certs, endorser_keys, &mut flags);
        flags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::committer::{vscc_block, vscc_block_pooled};
    use crate::testutil::{endorsed_tx, fixture, Fixture};
    use fabricsim_crypto::{Hash256, KeyPair};
    use fabricsim_policy::Policy;
    use fabricsim_types::{ChannelId, Transaction};

    fn block_of(txs: Vec<Transaction>) -> Block {
        Block::assemble(ChannelId::default_channel(), 0, Hash256::ZERO, txs)
    }

    /// A block mixing valid, policy-failing, bad-endorser-signature and
    /// bad-creator-signature transactions, `n` in total.
    fn mixed_block(f: &Fixture, n: u64) -> Block {
        let txs = (0..n)
            .map(|nonce| match nonce % 4 {
                0 => endorsed_tx(f, nonce, &[0, 1]), // satisfies AND2 → valid
                1 => endorsed_tx(f, nonce, &[0]),    // policy failure
                2 => {
                    // Forge one endorsement signature.
                    let mut tx = endorsed_tx(f, nonce, &[0, 1]);
                    let rogue = KeyPair::from_seed(b"rogue");
                    tx.endorsements[1].endorser_key = rogue.public;
                    tx.endorsements[1].signature = rogue.sign(&tx.response_bytes());
                    tx.signature = f.client.sign(&tx.signed_bytes());
                    tx
                }
                _ => {
                    // Tamper with the envelope after signing.
                    let mut tx = endorsed_tx(f, nonce, &[0, 1]);
                    tx.payload = b"injected".to_vec();
                    tx
                }
            })
            .collect();
        block_of(txs)
    }

    #[test]
    fn pooled_vscc_is_identical_to_serial_across_pool_sizes() {
        let f = fixture(Policy::and_of_orgs(2), 2);
        let block = mixed_block(&f, 41);
        let serial = vscc_block(&block, &f.config, &f.msp, &f.client_certs, &f.endorser_keys);
        // The mix really exercises every verdict class.
        assert!(serial.contains(&None));
        assert!(serial.contains(&Some(ValidationCode::EndorsementPolicyFailure)));
        assert!(serial.contains(&Some(ValidationCode::BadEndorserSignature)));
        assert!(serial.contains(&Some(ValidationCode::BadCreatorSignature)));
        for pool in [1, 2, 8] {
            let pooled = vscc_block_pooled(
                &block,
                &f.config,
                &f.msp,
                &f.client_certs,
                &f.endorser_keys,
                pool,
            );
            assert_eq!(pooled, serial, "pool size {pool} diverged from serial");
            let staged = ValidationPipeline::new(pool).pre_commit_flags(
                &block,
                &f.config,
                &f.msp,
                &f.client_certs,
                &f.endorser_keys,
            );
            assert_eq!(staged, serial, "pipeline at pool {pool} diverged");
        }
    }

    #[test]
    fn pool_larger_than_the_block_is_fine() {
        let f = fixture(Policy::or_of_orgs(2), 2);
        let block = mixed_block(&f, 3);
        let serial = vscc_block(&block, &f.config, &f.msp, &f.client_certs, &f.endorser_keys);
        let pooled = vscc_block_pooled(
            &block,
            &f.config,
            &f.msp,
            &f.client_certs,
            &f.endorser_keys,
            64,
        );
        assert_eq!(pooled, serial);
    }

    #[test]
    fn empty_block_yields_no_flags() {
        let f = fixture(Policy::or_of_orgs(1), 1);
        let block = block_of(Vec::new());
        for pool in [1, 4] {
            let flags = ValidationPipeline::new(pool).pre_commit_flags(
                &block,
                &f.config,
                &f.msp,
                &f.client_certs,
                &f.endorser_keys,
            );
            assert!(flags.is_empty());
        }
    }

    #[test]
    fn duplicate_tx_ids_are_flagged_after_the_first() {
        let f = fixture(Policy::or_of_orgs(1), 1);
        let dup = endorsed_tx(&f, 7, &[0]);
        let block = block_of(vec![dup.clone(), endorsed_tx(&f, 8, &[0]), dup]);
        for pool in [1, 4] {
            let flags = ValidationPipeline::new(pool).pre_commit_flags(
                &block,
                &f.config,
                &f.msp,
                &f.client_certs,
                &f.endorser_keys,
            );
            assert_eq!(
                flags,
                vec![None, None, Some(ValidationCode::DuplicateTxId)],
                "pool size {pool}"
            );
        }
    }

    #[test]
    fn zero_pool_size_is_clamped_to_serial() {
        assert_eq!(ValidationPipeline::new(0).pool_size(), 1);
    }

    /// Wall-clock speedup of the parallel VSCC stage — the ISSUE's acceptance
    /// bar (> 1.5× at 4 workers on a ≥1000-tx block). Timing-sensitive, so it
    /// only runs when asked for explicitly (CI runs it under `--release`):
    /// `cargo test --release -p fabricsim-peer -- --ignored vscc_pool_speedup`
    #[test]
    #[ignore = "wall-clock benchmark; run with --release -- --ignored"]
    fn vscc_pool_speedup_exceeds_1_5x_at_4_workers() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores < 4 {
            eprintln!("skipping speedup assertion: only {cores} core(s) available");
            return;
        }
        let f = fixture(Policy::and_of_orgs(3), 3);
        let txs = (0..1200).map(|n| endorsed_tx(&f, n, &[0, 1, 2])).collect();
        let block = block_of(txs);
        let time = |workers: usize| {
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let t0 = std::time::Instant::now();
                let flags = vscc_block_pooled(
                    &block,
                    &f.config,
                    &f.msp,
                    &f.client_certs,
                    &f.endorser_keys,
                    workers,
                );
                best = best.min(t0.elapsed().as_secs_f64());
                assert_eq!(flags.len(), 1200);
            }
            best
        };
        let serial = time(1);
        let pooled = time(4);
        let speedup = serial / pooled;
        assert!(
            speedup > 1.5,
            "VSCC at 4 workers must beat serial by >1.5x: serial {serial:.3}s, \
             pooled {pooled:.3}s, speedup {speedup:.2}x"
        );
    }
}
