//! Live metrics hooks for the validation pipeline.
//!
//! The counters live on the wall-clock side of the live observability plane:
//! the pipeline bumps them as blocks are validated, a metrics exporter reads
//! them concurrently, and nothing in the simulation ever reads them back —
//! so installing (or not installing) them cannot perturb a deterministic run.
//!
//! The hook is process-global because [`crate::ValidationPipeline`] is a
//! `Copy` value threaded through every committer; storing shared handles in
//! it would change its type for every embedder. Install once per process
//! (typically from the simulator's live-metrics bootstrap) and every
//! pipeline in the process reports.

use std::sync::OnceLock;

use fabricsim_obs::{Counter, MetricsRegistry};

/// Counters the VSCC stage of the validation pipeline maintains.
#[derive(Debug, Clone)]
pub struct PipelineMetrics {
    /// Blocks whose VSCC stage ran.
    pub vscc_blocks: Counter,
    /// Per-transaction VSCC checks performed (signature + policy).
    pub vscc_checks: Counter,
    /// VSCC checks that rejected the transaction.
    pub vscc_rejects: Counter,
}

impl PipelineMetrics {
    /// Registers the pipeline counter family in `registry`.
    pub fn register(registry: &MetricsRegistry) -> PipelineMetrics {
        PipelineMetrics {
            vscc_blocks: registry.counter(
                "fabricsim_peer_vscc_blocks_total",
                "Blocks whose VSCC stage was executed by the validation pipeline.",
                &[],
            ),
            vscc_checks: registry.counter(
                "fabricsim_peer_vscc_checks_total",
                "Per-transaction VSCC checks (creator signature, endorsements, policy).",
                &[],
            ),
            vscc_rejects: registry.counter(
                "fabricsim_peer_vscc_rejects_total",
                "VSCC checks that flagged the transaction invalid.",
                &[],
            ),
        }
    }
}

static GLOBAL: OnceLock<PipelineMetrics> = OnceLock::new();

/// Installs the process-global pipeline metrics. Returns `false` when a set
/// was already installed (the first install wins; handles are shared, so a
/// second install with the same registry would be a no-op anyway).
pub fn install_metrics(metrics: PipelineMetrics) -> bool {
    GLOBAL.set(metrics).is_ok()
}

/// The installed metrics, if any.
pub(crate) fn metrics() -> Option<&'static PipelineMetrics> {
    GLOBAL.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_counters_render_in_exposition() {
        let registry = MetricsRegistry::new();
        let m = PipelineMetrics::register(&registry);
        m.vscc_blocks.inc();
        m.vscc_checks.add(50);
        m.vscc_rejects.add(3);
        let text = registry.render();
        assert!(text.contains("fabricsim_peer_vscc_blocks_total 1"));
        assert!(text.contains("fabricsim_peer_vscc_checks_total 50"));
        assert!(text.contains("fabricsim_peer_vscc_rejects_total 3"));
        fabricsim_obs::validate_exposition(&text).expect("valid exposition");
    }
}
