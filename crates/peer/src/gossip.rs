//! Gossip block dissemination between peers.
//!
//! In production Fabric only a subset of peers (org *leader peers*) connect to
//! the ordering service for block delivery; everyone else receives blocks over
//! the gossip mesh (push with a small fanout, plus anti-entropy pulls to
//! repair losses). The paper's related work highlights exactly this
//! dissemination path as the network-bandwidth bottleneck at larger peer
//! counts, so fabricsim models it explicitly.
//!
//! [`GossipNode`] is a deterministic state machine in the house style:
//! feed it inputs, apply the returned effects.

use std::collections::BTreeMap;

use fabricsim_types::Block;

/// Messages exchanged over the gossip mesh.
#[derive(Debug, Clone, PartialEq)]
pub enum GossipMsg {
    /// Push a (possibly new) block to a neighbour.
    Push {
        /// The block.
        block: Block,
        /// Gossip depth of this push: 1 for the first hop off an
        /// orderer-connected leader, incremented on every re-forward.
        /// Observability-only — delivery logic never branches on it.
        hop: u32,
    },
    /// Anti-entropy: ask a neighbour for anything above our height.
    PullRequest {
        /// The requester's contiguous delivered height.
        have: u64,
    },
    /// Reply to a pull with the missing blocks, in order.
    PullResponse {
        /// Blocks starting at the requester's height.
        blocks: Vec<Block>,
    },
}

/// Effects the host must apply after driving a gossip node.
#[derive(Debug, Clone, PartialEq)]
pub enum GossipEffect {
    /// Send `message` to gossip neighbour `to` (a peer index).
    Send {
        /// Destination peer.
        to: u32,
        /// The message.
        message: GossipMsg,
    },
    /// A block became deliverable in order: hand it to the committer.
    Deliver(Block),
}

/// Per-peer gossip state: contiguous delivered height, an out-of-order
/// buffer, a bounded cache of delivered blocks (to answer pulls), and a
/// deterministic RNG for fanout selection.
#[derive(Debug, Clone)]
pub struct GossipNode {
    id: u32,
    neighbours: Vec<u32>,
    fanout: usize,
    delivered_height: u64,
    buffered: BTreeMap<u64, Block>,
    cache: BTreeMap<u64, Block>,
    cache_blocks: usize,
    rng: u64,
}

impl GossipNode {
    /// Creates a node with the given mesh neighbours and push fanout.
    ///
    /// # Panics
    /// Panics if `fanout == 0`.
    pub fn new(id: u32, neighbours: Vec<u32>, fanout: usize, seed: u64) -> Self {
        assert!(fanout > 0, "gossip fanout must be positive");
        GossipNode {
            id,
            neighbours,
            fanout,
            delivered_height: 0,
            buffered: BTreeMap::new(),
            cache: BTreeMap::new(),
            cache_blocks: 64,
            rng: seed | 1,
        }
    }

    /// The node's peer index.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Contiguous height delivered to the committer so far.
    pub fn delivered_height(&self) -> u64 {
        self.delivered_height
    }

    fn next_rng(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn pick_fanout(&mut self) -> Vec<u32> {
        if self.neighbours.is_empty() {
            return Vec::new();
        }
        let mut targets = self.neighbours.clone();
        // Partial Fisher–Yates for the first `fanout` picks.
        let k = self.fanout.min(targets.len());
        for i in 0..k {
            let j = i + (self.next_rng() as usize) % (targets.len() - i);
            targets.swap(i, j);
        }
        targets.truncate(k);
        targets
    }

    /// A block arrived from the ordering service (leader peers only).
    pub fn on_block_from_orderer(&mut self, block: Block) -> Vec<GossipEffect> {
        self.ingest(block, 0)
    }

    /// Processes a gossip message from `from`.
    pub fn step(&mut self, from: u32, message: GossipMsg) -> Vec<GossipEffect> {
        match message {
            GossipMsg::Push { block, hop } => self.ingest(block, hop),
            GossipMsg::PullRequest { have } => {
                let blocks: Vec<Block> = self
                    .cache
                    .range(have..)
                    .map(|(_, b)| b.clone())
                    .take(8)
                    .collect();
                if blocks.is_empty() {
                    Vec::new()
                } else {
                    vec![GossipEffect::Send {
                        to: from,
                        message: GossipMsg::PullResponse { blocks },
                    }]
                }
            }
            GossipMsg::PullResponse { blocks } => {
                let mut effects = Vec::new();
                for b in blocks {
                    // Anti-entropy repair restarts the push depth count.
                    effects.extend(self.ingest(b, 0));
                }
                effects
            }
        }
    }

    /// Anti-entropy tick: pull from one random neighbour (repairs losses and
    /// feeds non-leader peers that missed pushes).
    pub fn tick(&mut self) -> Vec<GossipEffect> {
        if self.neighbours.is_empty() {
            return Vec::new();
        }
        let i = (self.next_rng() as usize) % self.neighbours.len();
        vec![GossipEffect::Send {
            to: self.neighbours[i],
            message: GossipMsg::PullRequest {
                have: self.delivered_height,
            },
        }]
    }

    fn ingest(&mut self, block: Block, hop: u32) -> Vec<GossipEffect> {
        let number = block.header.number;
        // Duplicate or already-buffered: nothing to do, nothing to forward.
        if number < self.delivered_height || self.buffered.contains_key(&number) {
            return Vec::new();
        }
        let mut effects = Vec::new();
        // Forward the novel block to a random fanout before delivery.
        for to in self.pick_fanout() {
            effects.push(GossipEffect::Send {
                to,
                message: GossipMsg::Push {
                    block: block.clone(),
                    hop: hop + 1,
                },
            });
        }
        self.buffered.insert(number, block);
        // Drain in-order prefix.
        while let Some(b) = self.buffered.remove(&self.delivered_height) {
            self.cache.insert(b.header.number, b.clone());
            if self.cache.len() > self.cache_blocks {
                // lint:allow(no-unwrap-in-lib) -- inside the over-capacity branch the cache is
                // non-empty
                let oldest = *self.cache.keys().next().expect("non-empty");
                self.cache.remove(&oldest);
            }
            self.delivered_height += 1;
            effects.push(GossipEffect::Deliver(b));
        }
        effects
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabricsim_crypto::Hash256;
    use fabricsim_types::ChannelId;

    fn block(n: u64) -> Block {
        Block::assemble(ChannelId::default_channel(), n, Hash256::ZERO, Vec::new())
    }

    fn deliveries(effects: &[GossipEffect]) -> Vec<u64> {
        effects
            .iter()
            .filter_map(|e| match e {
                GossipEffect::Deliver(b) => Some(b.header.number),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn in_order_blocks_deliver_and_forward() {
        let mut g = GossipNode::new(0, vec![1, 2, 3], 2, 7);
        let e0 = g.on_block_from_orderer(block(0));
        assert_eq!(deliveries(&e0), vec![0]);
        let pushes = e0
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    GossipEffect::Send {
                        message: GossipMsg::Push { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(pushes, 2, "fanout pushes");
        assert_eq!(g.delivered_height(), 1);
    }

    #[test]
    fn out_of_order_blocks_buffer_until_gap_fills() {
        let mut g = GossipNode::new(0, vec![1], 1, 7);
        let e2 = g.step(
            1,
            GossipMsg::Push {
                block: block(2),
                hop: 1,
            },
        );
        assert!(deliveries(&e2).is_empty(), "gap: block 0/1 missing");
        let e0 = g.step(
            1,
            GossipMsg::Push {
                block: block(0),
                hop: 1,
            },
        );
        assert_eq!(deliveries(&e0), vec![0]);
        let e1 = g.step(
            1,
            GossipMsg::Push {
                block: block(1),
                hop: 1,
            },
        );
        assert_eq!(
            deliveries(&e1),
            vec![1, 2],
            "buffered block drains in order"
        );
        assert_eq!(g.delivered_height(), 3);
    }

    #[test]
    fn duplicates_are_absorbed_without_reforwarding() {
        let mut g = GossipNode::new(0, vec![1, 2], 2, 7);
        g.on_block_from_orderer(block(0));
        let again = g.step(
            2,
            GossipMsg::Push {
                block: block(0),
                hop: 1,
            },
        );
        assert!(again.is_empty(), "duplicate push must not echo");
    }

    #[test]
    fn pull_repairs_missing_blocks() {
        let mut source = GossipNode::new(0, vec![1], 1, 7);
        for n in 0..5 {
            source.on_block_from_orderer(block(n));
        }
        let mut lagging = GossipNode::new(1, vec![0], 1, 8);
        // Tick produces a pull request; route it to the source.
        let pulls = lagging.tick();
        let GossipEffect::Send { to: 0, message } = &pulls[0] else {
            panic!("expected a pull request, got {pulls:?}");
        };
        let responses = source.step(1, message.clone());
        let GossipEffect::Send { to: 1, message } = &responses[0] else {
            panic!("expected a pull response");
        };
        let effects = lagging.step(0, message.clone());
        assert_eq!(deliveries(&effects), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pull_with_nothing_new_is_silent() {
        let mut source = GossipNode::new(0, vec![1], 1, 7);
        source.on_block_from_orderer(block(0));
        let effects = source.step(1, GossipMsg::PullRequest { have: 1 });
        assert!(effects.is_empty());
    }

    #[test]
    fn mesh_converges_under_lossy_pushes() {
        // 8 peers, only peer 0 hears from the orderer; pushes to odd peers
        // are dropped; anti-entropy pulls must still converge everyone.
        let n = 8u32;
        let mut nodes: Vec<GossipNode> = (0..n)
            .map(|i| {
                let neighbours: Vec<u32> = (0..n).filter(|&j| j != i).collect();
                GossipNode::new(i, neighbours, 2, 100 + i as u64)
            })
            .collect();
        let mut inflight: Vec<(u32, u32, GossipMsg)> = Vec::new();
        let drive = |nodes: &mut Vec<GossipNode>, inflight: &mut Vec<(u32, u32, GossipMsg)>| {
            for _ in 0..200 {
                // Anti-entropy everywhere.
                for i in 0..n {
                    for e in nodes[i as usize].tick() {
                        if let GossipEffect::Send { to, message } = e {
                            inflight.push((i, to, message));
                        }
                    }
                }
                while let Some((from, to, msg)) = inflight.pop() {
                    // Drop pushes to odd-numbered peers.
                    if matches!(msg, GossipMsg::Push { .. }) && to % 2 == 1 {
                        continue;
                    }
                    for e in nodes[to as usize].step(from, msg.clone()) {
                        if let GossipEffect::Send { to: t2, message } = e {
                            inflight.push((to, t2, message));
                        }
                    }
                }
            }
        };
        for blk in 0..10 {
            for e in nodes[0].on_block_from_orderer(block(blk)) {
                if let GossipEffect::Send { to, message } = e {
                    inflight.push((0, to, message));
                }
            }
        }
        drive(&mut nodes, &mut inflight);
        for node in &nodes {
            assert_eq!(
                node.delivered_height(),
                10,
                "peer {} did not converge",
                node.id()
            );
        }
    }
}
