//! Phase-timestamped transaction traces and their aggregation.
//!
//! Every transaction carries a [`TxTrace`] with the timestamps the paper's
//! log-based methodology records: creation, endorsement, submission to the
//! orderer, ordering acknowledgment, block inclusion, delivery, commit. All
//! figures and tables are derived from these traces plus block-cut records.

use fabricsim_des::{SimDuration, SimTime};
use fabricsim_types::ValidationCode;

/// Terminal outcome of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// Still in flight when the simulation ended.
    InFlight,
    /// Dropped at the client: the submission queue was saturated.
    OverloadDropped,
    /// Endorsement collection failed (peer refusal or divergent results).
    EndorsementFailed,
    /// The ordering service did not acknowledge within the client timeout
    /// (3 s in the paper); the client rejected the transaction.
    OrderingTimeout,
    /// Committed with the given validation code ([`ValidationCode::Valid`]
    /// means it updated the world state).
    Committed(ValidationCode),
}

/// Per-transaction phase timestamps.
#[derive(Debug, Clone)]
pub struct TxTrace {
    /// Arrival at the client pool (the paper's submission timestamp).
    pub created: SimTime,
    /// Proposal left the client (after prep + SDK pre-latency).
    pub proposal_sent: Option<SimTime>,
    /// Endorsement collection satisfied and envelope assembled.
    pub endorsed: Option<SimTime>,
    /// Envelope handed to the ordering service.
    pub submitted: Option<SimTime>,
    /// Ordering service acknowledged the broadcast.
    pub order_acked: Option<SimTime>,
    /// Packed into a block by the ordering service.
    pub ordered: Option<SimTime>,
    /// Block containing the transaction arrived at the observer peer.
    pub delivered: Option<SimTime>,
    /// Validation finished at the observer peer (commit timestamp).
    pub committed: Option<SimTime>,
    /// Terminal outcome.
    pub outcome: TxOutcome,
    /// Endorsement signatures carried (drives VSCC cost).
    pub signatures: usize,
}

impl TxTrace {
    /// A fresh trace at creation time.
    pub fn new(created: SimTime) -> Self {
        TxTrace {
            created,
            proposal_sent: None,
            endorsed: None,
            submitted: None,
            order_acked: None,
            ordered: None,
            delivered: None,
            committed: None,
            outcome: TxOutcome::InFlight,
            signatures: 0,
        }
    }

    /// Execute-phase latency (creation → endorsed).
    pub fn execute_latency(&self) -> Option<SimDuration> {
        self.endorsed.map(|t| t.saturating_since(self.created))
    }

    /// Order+validate latency (submission to orderer → commit), the quantity
    /// the paper plots as "Order & Validate".
    pub fn order_validate_latency(&self) -> Option<SimDuration> {
        match (self.submitted, self.committed) {
            (Some(s), Some(c)) => Some(c.saturating_since(s)),
            _ => None,
        }
    }

    /// End-to-end latency (creation → commit), the paper's Definition 4.2.
    pub fn overall_latency(&self) -> Option<SimDuration> {
        self.committed.map(|t| t.saturating_since(self.created))
    }

    /// True if the client counted this transaction as successful (committed
    /// valid and not rejected by the 3 s ordering timeout).
    pub fn is_success(&self) -> bool {
        matches!(self.outcome, TxOutcome::Committed(ValidationCode::Valid))
    }
}

/// Latency summary statistics over a set of samples.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Mean, seconds.
    pub mean_s: f64,
    /// Median, seconds.
    pub p50_s: f64,
    /// 95th percentile, seconds.
    pub p95_s: f64,
    /// 99th percentile, seconds.
    pub p99_s: f64,
    /// Maximum, seconds.
    pub max_s: f64,
}

impl LatencyStats {
    /// Computes stats from raw samples (empty input gives zeros).
    ///
    /// Percentiles use linear interpolation between closest ranks (the
    /// "type 7" rule, numpy's default): `h = (n-1)·q`, interpolating between
    /// `samples[floor(h)]` and `samples[ceil(h)]`. The previous rule rounded
    /// `h` to the nearest rank, which is biased: it could sit a full rank off
    /// and made e.g. p50 of an even-sized sample depend on rounding direction.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_by(f64::total_cmp);
        let count = samples.len();
        let mean_s = samples.iter().sum::<f64>() / count as f64;
        let pick = |q: f64| {
            let h = (count - 1) as f64 * q;
            let lo = h.floor() as usize;
            let hi = h.ceil() as usize;
            samples[lo] + (h - lo as f64) * (samples[hi] - samples[lo])
        };
        LatencyStats {
            count,
            mean_s,
            p50_s: pick(0.50),
            p95_s: pick(0.95),
            p99_s: pick(0.99),
            max_s: samples[count - 1],
        }
    }
}

/// Throughput and latency for one pipeline phase.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseReport {
    /// Transactions completing the phase per second within the window.
    pub throughput_tps: f64,
    /// Latency statistics for the phase.
    pub latency: LatencyStats,
}

/// Everything one simulation run reports.
#[derive(Debug, Clone)]
pub struct SummaryReport {
    /// Offered arrival rate, tps.
    pub offered_tps: f64,
    /// Measurement window length, seconds.
    pub window_secs: f64,
    /// Execute phase (endorsement) report.
    pub execute: PhaseReport,
    /// Order phase report (throughput = txs packed into blocks; latency =
    /// submission → block inclusion).
    pub order: PhaseReport,
    /// Validate phase report (throughput = valid commits at the observer;
    /// latency = submission → commit, the paper's "Order & Validate").
    pub validate: PhaseReport,
    /// End-to-end latency over successful transactions.
    pub overall_latency: LatencyStats,
    /// Transactions created in the window.
    pub created: usize,
    /// Valid commits in the window.
    pub committed_valid: usize,
    /// Commits flagged invalid (MVCC conflicts etc.) in the window.
    pub committed_invalid: usize,
    /// Client-side overload drops in the window.
    pub overload_dropped: usize,
    /// Ordering-timeout rejections in the window.
    pub ordering_timeouts: usize,
    /// Endorsement failures in the window.
    pub endorsement_failures: usize,
    /// Ordering-timeout rejections per second of window (failure *rate*, the
    /// quantity to watch as offered load crosses the saturation knee).
    pub ordering_timeouts_per_s: f64,
    /// Client-side overload drops per second of window.
    pub overload_dropped_per_s: f64,
    /// Mean block time (block-cut interarrival) in the window, seconds.
    pub mean_block_time_s: f64,
    /// Mean transactions per cut block in the window.
    pub mean_block_size: f64,
    /// Blocks cut in the window.
    pub blocks_cut: usize,
    /// RNG seed the run used — with [`SummaryReport::config_digest`], every
    /// report/trace/bench artifact carries what it takes to reproduce it.
    /// Zero when the summary was aggregated outside a simulation run.
    pub seed: u64,
    /// Short config fingerprint (`SimConfig::digest`). Empty when the
    /// summary was aggregated outside a simulation run.
    pub config_digest: String,
}

impl LatencyStats {
    /// Compact JSON object. Floats use Rust's shortest-roundtrip `{}`
    /// rendering, so equal stats always produce byte-equal JSON.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"mean_s\":{},\"p50_s\":{},\"p95_s\":{},\"p99_s\":{},\"max_s\":{}}}",
            self.count, self.mean_s, self.p50_s, self.p95_s, self.p99_s, self.max_s
        )
    }
}

impl PhaseReport {
    /// Compact JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"throughput_tps\":{},\"latency\":{}}}",
            self.throughput_tps,
            self.latency.to_json()
        )
    }
}

impl SummaryReport {
    /// The paper's headline throughput: valid commits per second.
    pub fn committed_tps(&self) -> f64 {
        self.validate.throughput_tps
    }

    /// Serializes the full report as one compact JSON object.
    ///
    /// Every field participates and the rendering is deterministic
    /// (fixed key order, shortest-roundtrip floats), so two identical runs
    /// must produce *byte-identical* strings — the determinism regression
    /// test compares reports with plain string equality.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"offered_tps\":{},\"window_secs\":{},\"execute\":{},\"order\":{},\
             \"validate\":{},\"overall_latency\":{},\"created\":{},\
             \"committed_valid\":{},\"committed_invalid\":{},\"overload_dropped\":{},\
             \"ordering_timeouts\":{},\"endorsement_failures\":{},\
             \"ordering_timeouts_per_s\":{},\"overload_dropped_per_s\":{},\
             \"mean_block_time_s\":{},\"mean_block_size\":{},\"blocks_cut\":{},\
             \"seed\":{},\"config_digest\":\"{}\"}}",
            self.offered_tps,
            self.window_secs,
            self.execute.to_json(),
            self.order.to_json(),
            self.validate.to_json(),
            self.overall_latency.to_json(),
            self.created,
            self.committed_valid,
            self.committed_invalid,
            self.overload_dropped,
            self.ordering_timeouts,
            self.endorsement_failures,
            self.ordering_timeouts_per_s,
            self.overload_dropped_per_s,
            self.mean_block_time_s,
            self.mean_block_size,
            self.blocks_cut,
            self.seed,
            self.config_digest
        )
    }
}

/// Aggregates traces + block records into a [`SummaryReport`].
pub fn summarize(
    traces: &[TxTrace],
    block_cuts: &[(SimTime, usize)],
    window: (SimTime, SimTime),
    offered_tps: f64,
) -> SummaryReport {
    let (w0, w1) = window;
    let window_secs = (w1 - w0).as_secs_f64();
    let in_window = |t: SimTime| t >= w0 && t < w1;

    let mut execute_done = 0usize;
    let mut ordered_done = 0usize;
    let mut committed_valid = 0usize;
    let mut committed_invalid = 0usize;
    let mut created = 0usize;
    let mut overload = 0usize;
    let mut timeouts = 0usize;
    let mut endorse_fail = 0usize;

    let mut exec_lat = Vec::new();
    let mut order_lat = Vec::new();
    let mut ov_lat = Vec::new();
    let mut overall = Vec::new();

    for t in traces {
        if in_window(t.created) {
            created += 1;
            match t.outcome {
                TxOutcome::OverloadDropped => overload += 1,
                TxOutcome::OrderingTimeout => timeouts += 1,
                TxOutcome::EndorsementFailed => endorse_fail += 1,
                _ => {}
            }
        }
        if t.endorsed.is_some_and(in_window) {
            execute_done += 1;
            if let Some(l) = t.execute_latency() {
                exec_lat.push(l.as_secs_f64());
            }
        }
        if t.ordered.is_some_and(in_window) {
            ordered_done += 1;
            if let (Some(s), Some(o)) = (t.submitted, t.ordered) {
                order_lat.push(o.saturating_since(s).as_secs_f64());
            }
        }
        if t.committed.is_some_and(in_window) {
            match t.outcome {
                TxOutcome::Committed(ValidationCode::Valid) => {
                    committed_valid += 1;
                    if let Some(l) = t.order_validate_latency() {
                        ov_lat.push(l.as_secs_f64());
                    }
                    if let Some(l) = t.overall_latency() {
                        overall.push(l.as_secs_f64());
                    }
                }
                TxOutcome::Committed(_) => committed_invalid += 1,
                _ => {}
            }
        }
    }

    let cuts: Vec<&(SimTime, usize)> = block_cuts.iter().filter(|(t, _)| in_window(*t)).collect();
    let mean_block_time_s = if cuts.len() >= 2 {
        let first = cuts[0].0;
        let last = cuts[cuts.len() - 1].0;
        (last - first).as_secs_f64() / (cuts.len() - 1) as f64
    } else {
        0.0
    };
    let mean_block_size = if cuts.is_empty() {
        0.0
    } else {
        cuts.iter().map(|(_, n)| *n as f64).sum::<f64>() / cuts.len() as f64
    };

    SummaryReport {
        offered_tps,
        window_secs,
        execute: PhaseReport {
            throughput_tps: execute_done as f64 / window_secs,
            latency: LatencyStats::from_samples(exec_lat),
        },
        order: PhaseReport {
            throughput_tps: ordered_done as f64 / window_secs,
            latency: LatencyStats::from_samples(order_lat),
        },
        validate: PhaseReport {
            throughput_tps: committed_valid as f64 / window_secs,
            latency: LatencyStats::from_samples(ov_lat),
        },
        overall_latency: LatencyStats::from_samples(overall),
        created,
        committed_valid,
        committed_invalid,
        overload_dropped: overload,
        ordering_timeouts: timeouts,
        endorsement_failures: endorse_fail,
        ordering_timeouts_per_s: timeouts as f64 / window_secs,
        overload_dropped_per_s: overload as f64 / window_secs,
        mean_block_time_s,
        mean_block_size,
        blocks_cut: cuts.len(),
        // Provenance is the run's, not the trace set's: `Simulation` stamps
        // both fields after aggregation.
        seed: 0,
        config_digest: String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn committed_trace(created_s: f64, committed_s: f64) -> TxTrace {
        let mut t = TxTrace::new(at(created_s));
        t.proposal_sent = Some(at(created_s + 0.01));
        t.endorsed = Some(at(created_s + 0.1));
        t.submitted = Some(at(created_s + 0.12));
        t.order_acked = Some(at(created_s + 0.13));
        t.ordered = Some(at(created_s + 0.5));
        t.delivered = Some(at(created_s + 0.55));
        t.committed = Some(at(committed_s));
        t.outcome = TxOutcome::Committed(ValidationCode::Valid);
        t.signatures = 1;
        t
    }

    #[test]
    fn latencies_derive_from_timestamps() {
        let t = committed_trace(1.0, 1.8);
        assert!((t.execute_latency().unwrap().as_secs_f64() - 0.1).abs() < 1e-9);
        assert!((t.order_validate_latency().unwrap().as_secs_f64() - 0.68).abs() < 1e-9);
        assert!((t.overall_latency().unwrap().as_secs_f64() - 0.8).abs() < 1e-9);
        assert!(t.is_success());
    }

    #[test]
    fn summarize_counts_within_window() {
        let traces = vec![
            committed_trace(0.5, 1.2), // created before window, commits inside
            committed_trace(2.0, 2.8), // fully inside
            committed_trace(8.5, 9.6), // commits after window end
            {
                let mut t = TxTrace::new(at(3.0));
                t.outcome = TxOutcome::OverloadDropped;
                t
            },
            {
                let mut t = TxTrace::new(at(4.0));
                t.endorsed = Some(at(4.2));
                t.submitted = Some(at(4.21));
                t.outcome = TxOutcome::OrderingTimeout;
                t
            },
        ];
        let cuts = vec![(at(2.0), 10usize), (at(4.0), 20), (at(6.0), 30)];
        let r = summarize(&traces, &cuts, (at(1.0), at(9.0)), 100.0);
        assert_eq!(r.created, 4); // all but the 0.5s one
        assert_eq!(r.committed_valid, 2);
        assert_eq!(r.overload_dropped, 1);
        assert_eq!(r.ordering_timeouts, 1);
        assert!((r.committed_tps() - 2.0 / 8.0).abs() < 1e-9);
        assert!((r.mean_block_time_s - 2.0).abs() < 1e-9);
        assert!((r.mean_block_size - 20.0).abs() < 1e-9);
        assert_eq!(r.blocks_cut, 3);
    }

    #[test]
    fn latency_stats_percentiles() {
        let s = LatencyStats::from_samples((1..=100).map(|i| i as f64).collect());
        assert_eq!(s.count, 100);
        assert!((s.mean_s - 50.5).abs() < 1e-9);
        // Type-7 interpolation: h = 99·q, x[h] interpolated.
        assert!((s.p50_s - 50.5).abs() < 1e-9, "p50 was {}", s.p50_s);
        assert!((s.p95_s - 95.05).abs() < 1e-9, "p95 was {}", s.p95_s);
        assert!((s.p99_s - 99.01).abs() < 1e-9, "p99 was {}", s.p99_s);
        assert_eq!(s.max_s, 100.0);
        assert_eq!(LatencyStats::from_samples(vec![]).count, 0);
    }

    #[test]
    fn percentiles_interpolate_on_small_samples() {
        // Two samples: p50 is their midpoint under type-7 (the round-based
        // rule returned one endpoint, direction-dependent).
        let s = LatencyStats::from_samples(vec![1.0, 3.0]);
        assert!((s.p50_s - 2.0).abs() < 1e-9);
        // One sample: every percentile is that sample.
        let s = LatencyStats::from_samples(vec![7.0]);
        assert_eq!((s.p50_s, s.p95_s, s.p99_s, s.max_s), (7.0, 7.0, 7.0, 7.0));
    }

    #[test]
    fn failure_rates_are_per_window_second() {
        let traces = vec![
            {
                let mut t = TxTrace::new(at(2.0));
                t.outcome = TxOutcome::OverloadDropped;
                t
            },
            {
                let mut t = TxTrace::new(at(3.0));
                t.outcome = TxOutcome::OrderingTimeout;
                t
            },
            {
                let mut t = TxTrace::new(at(4.0));
                t.outcome = TxOutcome::OrderingTimeout;
                t
            },
        ];
        let r = summarize(&traces, &[], (at(1.0), at(5.0)), 100.0);
        assert!((r.ordering_timeouts_per_s - 0.5).abs() < 1e-9);
        assert!((r.overload_dropped_per_s - 0.25).abs() < 1e-9);
    }

    #[test]
    fn failed_outcomes_are_not_successes() {
        let mut t = TxTrace::new(at(1.0));
        t.outcome = TxOutcome::OrderingTimeout;
        assert!(!t.is_success());
        t.outcome = TxOutcome::Committed(ValidationCode::MvccReadConflict);
        assert!(!t.is_success());
    }
}
