//! The calibrated CPU / network cost model (DESIGN.md §5).
//!
//! Every constant here is a *measured-capacity calibration* against the
//! paper's testbed (Fabric v1.4.3, Node SDK 1.0, i7-2600 machines, 1 Gbps):
//! the derivations are spelled out field by field. Everything downstream —
//! knees, saturation order, latency blow-up past the peak — is emergent from
//! queueing, not hard-coded.

use fabricsim_des::SimDuration;

/// CPU and network service-time constants.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    // ---- client pools (workload generator + Node SDK) ----
    /// Proposal preparation on the pool's submission thread, ms. 19 ms ⇒
    /// ≈52 tps per pool, matching the paper's ≈50 tps-per-endorsing-peer
    /// execute-phase scaling (Table II).
    pub client_prep_ms: f64,
    /// Uniform jitter applied to preparation (± this many ms).
    pub client_prep_jitter_ms: f64,
    /// Fixed asynchronous SDK pipeline latency before the proposal leaves the
    /// client, ms (Node event loop + MSP context).
    pub sdk_pre_ms: f64,
    /// Fixed asynchronous SDK pipeline latency after collection, ms.
    pub sdk_post_ms: f64,
    /// Threads on the pool's response-processing station.
    pub client_recv_threads: usize,
    /// Base cost to process a satisfied endorsement set, ms.
    pub client_assemble_base_ms: f64,
    /// Additional per-endorsement verification/decode cost at the client, ms.
    /// This is what stretches execute latency under `AND-x` (Table III:
    /// 0.30 → 0.57 s as x grows 1 → 5).
    pub client_assemble_per_endorsement_ms: f64,
    /// Exponential-mean network/scheduling jitter per endorsement path, ms.
    /// Under `AND-x` the client waits for the max over x paths.
    pub endorse_path_jitter_ms: f64,
    /// Queue-depth cap per pool submission station; arrivals beyond it are
    /// dropped as overload (they could never meet the 3 s budget).
    pub client_queue_cap: usize,

    // ---- endorsing peers ----
    /// Proposal verification (the four checks), ms.
    pub peer_verify_proposal_ms: f64,
    /// Chaincode execution (Docker container call in real Fabric), ms.
    pub peer_execute_ms: f64,
    /// ESCC response signing, ms.
    pub peer_sign_ms: f64,
    /// Hardware threads on the peer's endorsement station (i7-2600: 8).
    pub peer_endorse_threads: usize,

    // ---- validating peers (the committer pipeline) ----
    /// Per-block overhead (header checks, ledger append), ms.
    pub validate_block_overhead_ms: f64,
    /// VSCC fixed cost per transaction, ms.
    pub vscc_base_ms: f64,
    /// VSCC cost per endorsement signature verified, ms. With the base cost
    /// this calibrates validate capacity to ≈310 tps at one signature (`OR`)
    /// and ≈205 tps at five (`AND5`) — the paper's bottleneck numbers.
    pub vscc_per_sig_ms: f64,
    /// MVCC read-set check per transaction, ms.
    pub mvcc_ms: f64,
    /// State + block store write per transaction, ms.
    pub commit_ms: f64,
    /// Committer threads (Fabric 1.4's commit path is serial: 1).
    pub validate_threads: usize,
    /// VSCC worker-pool size *within* one committer pipeline: per-tx VSCC
    /// checks for one block are fanned out over this many workers while MVCC
    /// and the state/blockstore commit stay serial (Javaid et al.; Thakkar et
    /// al.). 1 = stock Fabric 1.4 behaviour.
    pub validator_pool_size: usize,

    // ---- ordering service ----
    /// OSN admission (envelope checks) per transaction, ms.
    pub osn_admission_ms: f64,
    /// Solo consensus cost per transaction, ms.
    pub solo_order_ms: f64,
    /// Kafka broker append/fetch handling per message, ms.
    pub kafka_broker_op_ms: f64,
    /// Raft leader append + replication handling per message, ms.
    pub raft_op_ms: f64,
    /// OSN consume-poll period (Kafka mode) and Raft tick period, ms.
    pub osn_tick_ms: f64,
    /// Kafka broker replication/fetch tick period, ms.
    pub broker_tick_ms: f64,
    /// Broker → ZooKeeper heartbeat period, ms.
    pub zk_heartbeat_ms: f64,
    /// CPU threads per ordering-service node (admission + consensus work).
    pub osn_cpu_threads: usize,
    /// CPU threads per Kafka broker.
    pub broker_cpu_threads: usize,

    // ---- network ----
    /// Link bandwidth, bits per second (paper: 1 Gbps Ethernet).
    pub link_bandwidth_bps: u64,
    /// One-way propagation delay, ms.
    pub link_propagation_ms: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            client_prep_ms: 19.0,
            client_prep_jitter_ms: 2.0,
            sdk_pre_ms: 100.0,
            sdk_post_ms: 95.0,
            client_recv_threads: 8,
            client_assemble_base_ms: 12.0,
            client_assemble_per_endorsement_ms: 30.0,
            endorse_path_jitter_ms: 18.0,
            client_queue_cap: 220,

            peer_verify_proposal_ms: 0.4,
            peer_execute_ms: 1.8,
            peer_sign_ms: 0.5,
            peer_endorse_threads: 8,

            validate_block_overhead_ms: 1.0,
            vscc_base_ms: 2.0,
            vscc_per_sig_ms: 0.42,
            mvcc_ms: 0.25,
            commit_ms: 0.55,
            validate_threads: 1,
            validator_pool_size: 1,

            osn_admission_ms: 0.10,
            solo_order_ms: 0.05,
            kafka_broker_op_ms: 0.15,
            raft_op_ms: 0.15,
            osn_tick_ms: 10.0,
            broker_tick_ms: 5.0,
            zk_heartbeat_ms: 500.0,
            osn_cpu_threads: 2,
            broker_cpu_threads: 2,

            link_bandwidth_bps: 1_000_000_000,
            link_propagation_ms: 0.15,
        }
    }
}

impl CostModel {
    /// Validate-phase CPU per transaction carrying `sigs` endorsement
    /// signatures, ms.
    pub fn validate_tx_ms(&self, sigs: usize) -> f64 {
        self.vscc_base_ms + self.vscc_per_sig_ms * sigs as f64 + self.mvcc_ms + self.commit_ms
    }

    /// VSCC stage CPU per transaction (creator + endorsement signature
    /// checks, policy evaluation) at `sigs` signatures, ms. This is the part
    /// of [`CostModel::validate_tx_ms`] that parallelizes across the
    /// validator pool.
    pub fn vscc_tx_ms(&self, sigs: usize) -> f64 {
        self.vscc_base_ms + self.vscc_per_sig_ms * sigs as f64
    }

    /// Serial commit-stage CPU per transaction (MVCC read-set check + state
    /// and blockstore writes), ms.
    pub fn commit_tx_ms(&self) -> f64 {
        self.mvcc_ms + self.commit_ms
    }

    /// Makespan of running the per-transaction VSCC costs `per_tx_ms` over
    /// `workers` pool workers, ms. Deterministic greedy list schedule:
    /// transactions are assigned in tx order to the earliest-free worker —
    /// exactly the schedule the functional pipeline's chunk split
    /// approximates, and at `workers == 1` it degenerates to the plain
    /// left-to-right sum (bit-identical f64 accumulation).
    pub fn vscc_makespan_ms(per_tx_ms: &[f64], workers: usize) -> f64 {
        let workers = workers.max(1);
        if workers == 1 {
            return per_tx_ms.iter().sum();
        }
        let mut free = vec![0.0f64; workers.min(per_tx_ms.len().max(1))];
        for &c in per_tx_ms {
            let slot = free
                .iter_mut()
                .enumerate()
                .min_by(|(ai, a), (bi, b)| a.total_cmp(b).then(ai.cmp(bi)))
                .map(|(_, v)| v)
                // lint:allow(no-unwrap-in-lib) -- free is non-empty: its length has a max(..,
                // 1) lower bound
                .expect("at least one worker");
            *slot += c;
        }
        free.iter().fold(0.0f64, |m, &v| m.max(v))
    }

    /// Theoretical validate-phase capacity (tps) at `sigs` signatures per
    /// transaction, ignoring block overhead. Accounts for the VSCC pool: with
    /// `p` pool workers the VSCC stage of a full block shrinks ≈`1/p` while
    /// MVCC + commit stay serial.
    pub fn validate_capacity_tps(&self, sigs: usize) -> f64 {
        if self.validator_pool_size <= 1 {
            return 1000.0 * self.validate_threads as f64 / self.validate_tx_ms(sigs);
        }
        let pool = self.validator_pool_size as f64;
        let per_tx = self.vscc_tx_ms(sigs) / pool + self.commit_tx_ms();
        1000.0 * self.validate_threads as f64 / per_tx
    }

    /// Theoretical execute-phase capacity (tps) with `pools` client pools.
    pub fn execute_capacity_tps(&self, pools: usize) -> f64 {
        1000.0 * pools as f64 / self.client_prep_ms
    }

    /// Endorsement CPU per proposal at a peer, ms.
    pub fn endorse_tx_ms(&self) -> f64 {
        self.peer_verify_proposal_ms + self.peer_execute_ms + self.peer_sign_ms
    }

    /// Helper: a millisecond count as a [`SimDuration`].
    pub fn ms(x: f64) -> SimDuration {
        SimDuration::from_millis_f64(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_the_paper() {
        let m = CostModel::default();
        // Validate bottleneck: ~310 tps under OR (1 sig), ~205 under AND5.
        let or = m.validate_capacity_tps(1);
        let and5 = m.validate_capacity_tps(5);
        assert!((300.0..325.0).contains(&or), "OR validate capacity {or}");
        assert!(
            (195.0..215.0).contains(&and5),
            "AND5 validate capacity {and5}"
        );
        // Execute phase: ~52 tps per client pool.
        let per_pool = m.execute_capacity_tps(1);
        assert!((50.0..55.0).contains(&per_pool), "pool capacity {per_pool}");
        // Endorsement is never the bottleneck: >2000 tps per peer.
        let peer_cap = 1000.0 * m.peer_endorse_threads as f64 / m.endorse_tx_ms();
        assert!(peer_cap > 2000.0, "peer endorse capacity {peer_cap}");
    }

    #[test]
    fn validate_cost_grows_with_signatures() {
        let m = CostModel::default();
        assert!(m.validate_tx_ms(5) > m.validate_tx_ms(1));
        assert!((m.validate_tx_ms(5) - m.validate_tx_ms(1) - 4.0 * m.vscc_per_sig_ms).abs() < 1e-9);
    }

    #[test]
    fn ms_helper() {
        assert_eq!(CostModel::ms(1.5).as_nanos(), 1_500_000);
    }

    #[test]
    fn stage_costs_sum_to_the_whole() {
        let m = CostModel::default();
        for sigs in [1, 3, 5] {
            assert!((m.vscc_tx_ms(sigs) + m.commit_tx_ms() - m.validate_tx_ms(sigs)).abs() < 1e-12);
        }
    }

    #[test]
    fn vscc_pool_relieves_the_validate_bottleneck() {
        // The Javaid-style relief curve: capacity grows with pool size but
        // saturates at the serial commit stage (Amdahl).
        let mut m = CostModel::default();
        let c1 = m.validate_capacity_tps(1);
        m.validator_pool_size = 4;
        let c4 = m.validate_capacity_tps(1);
        m.validator_pool_size = 1024;
        let ceiling = m.validate_capacity_tps(1);
        assert!(c4 > c1 * 1.5, "4 workers should relieve VSCC: {c1} -> {c4}");
        let serial_cap = 1000.0 / m.commit_tx_ms();
        assert!(
            ceiling < serial_cap && ceiling > serial_cap * 0.9,
            "huge pools pin capacity at the serial commit stage: {ceiling} vs {serial_cap}"
        );
    }

    #[test]
    fn makespan_single_worker_is_the_plain_sum() {
        let costs = [2.42, 2.42, 4.1, 0.3, 2.42];
        let serial: f64 = costs.iter().sum();
        assert_eq!(CostModel::vscc_makespan_ms(&costs, 1), serial);
        assert_eq!(CostModel::vscc_makespan_ms(&costs, 0), serial);
    }

    #[test]
    fn makespan_shrinks_with_workers_but_not_below_critical_path() {
        let costs: Vec<f64> = (0..100).map(|i| 2.0 + (i % 7) as f64 * 0.42).collect();
        let serial: f64 = costs.iter().sum();
        let m2 = CostModel::vscc_makespan_ms(&costs, 2);
        let m4 = CostModel::vscc_makespan_ms(&costs, 4);
        assert!(m2 < serial && m4 < m2, "{serial} {m2} {m4}");
        // Greedy list scheduling is within 2x of the lower bound sum/p.
        assert!(m4 >= serial / 4.0 && m4 <= serial / 2.0);
        // More workers than jobs: the longest single job is the makespan.
        let longest = costs.iter().fold(0.0f64, |m, &v| m.max(v));
        assert_eq!(CostModel::vscc_makespan_ms(&costs, 1000), longest);
    }

    #[test]
    fn makespan_of_empty_block_is_zero() {
        assert_eq!(CostModel::vscc_makespan_ms(&[], 4), 0.0);
    }
}
