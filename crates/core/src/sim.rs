//! The simulation world: clients, peers, ordering service, Kafka brokers and
//! ZooKeeper wired over the DES kernel with the calibrated cost model.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use fabricsim_chaincode::samples::{AssetTransfer, KvWrite, Nondeterministic, Smallbank};
use fabricsim_des::{
    EventId, Kernel, KernelProfile, Link, RngStream, ShardWorld, ShardedKernel, SimDuration,
    SimTime, Station,
};
use fabricsim_kafka::{
    Broker, BrokerEffect, BrokerMsg, ClientEvent, KafkaConfig, ZkEffect, ZkEnsemble, ZkMsg,
};
use fabricsim_msp::{CertificateAuthority, Msp};
use fabricsim_obs::{
    message_span_id, span_id, tx_sampled, BottleneckReport, EventSink, HealthConfig, HealthReport,
    HealthWindow, LogHistogram, MetricsRecorder, OnlineHealth, PhaseEvent, SpanEvent, SpanKind,
    SpanSink, StationClass, TracePhase, TxStationBreakdown, DEFAULT_SPAN_KIND_CAP,
    HEALTH_STATION_COUNT,
};
use fabricsim_ordering::{OsnEffect, OsnInput, OsnMsg, OsnNode};
use fabricsim_peer::{GossipEffect, GossipMsg, GossipNode, Peer, PeerConfig};
use fabricsim_policy::Policy;
use fabricsim_types::encode::WireSize;
use fabricsim_types::{
    Block, ChannelId, ClientId, OrdererType, OrgId, Principal, Proposal, ProposalResponse,
    Transaction, TxId, ValidationCode,
};

use fabricsim_client::{ClientSdk, CollectState, EndorsementCollector, TargetSelector};

use crate::live::LiveMetrics;
use crate::metrics::{summarize, SummaryReport, TxOutcome, TxTrace};
use crate::workload::{SimConfig, WorkloadKind};

/// Scheduled fault injections.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Crash these Kafka brokers at the given virtual second.
    pub crash_brokers: Vec<(u32, f64)>,
    /// Crash these OSNs at the given virtual second.
    pub crash_osns: Vec<(u32, f64)>,
    /// Make these endorsing peers run *non-deterministic chaincode* from the
    /// given virtual second: their simulation results diverge from honest
    /// replicas (the classic Fabric failure mode). Only meaningful for the
    /// `KvPut`/`KvRmw` workloads.
    pub nondeterministic_peers: Vec<(u32, f64)>,
}

impl FaultPlan {
    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.crash_brokers.is_empty()
            && self.crash_osns.is_empty()
            && self.nondeterministic_peers.is_empty()
    }
}

/// Mean utilization of each CPU station class over the run (fraction of
/// capacity; >1 means a queue was still draining at the horizon).
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationReport {
    /// Per-pool submission-thread utilization.
    pub pool_prep: Vec<f64>,
    /// Per-pool response-processing utilization.
    pub pool_recv: Vec<f64>,
    /// Per-peer endorsement-station utilization.
    pub peer_endorse: Vec<f64>,
    /// Per-peer VSCC-stage utilization (true per-tx CPU work over the
    /// validator pool) — the paper's bottleneck lives in this stage.
    pub peer_vscc: Vec<f64>,
    /// Per-peer serial MVCC + commit-stage utilization.
    pub peer_commit: Vec<f64>,
    /// Per-OSN CPU utilization.
    pub osn_cpu: Vec<f64>,
}

impl UtilizationReport {
    /// `(name, max utilization)` of the most loaded station class.
    pub fn hottest(&self) -> (&'static str, f64) {
        let max = |v: &[f64]| v.iter().cloned().fold(0.0, f64::max);
        [
            ("client-pool prep", max(&self.pool_prep)),
            ("client-pool recv", max(&self.pool_recv)),
            ("peer endorse", max(&self.peer_endorse)),
            ("peer vscc", max(&self.peer_vscc)),
            ("peer commit", max(&self.peer_commit)),
            ("osn cpu", max(&self.osn_cpu)),
        ]
        .into_iter()
        // `>=` keeps the last of equal maxima, matching `max_by` tie-breaking
        // (utilizations are never negative, so the seed never survives).
        .fold(
            ("idle", 0.0),
            |best, cand| {
                if cand.1 >= best.1 {
                    cand
                } else {
                    best
                }
            },
        )
    }
}

/// Observability artifacts of a run (see `fabricsim-obs`).
#[derive(Debug)]
pub struct RunObservability {
    /// Structured phase-transition events, in virtual-time order. Empty
    /// unless [`crate::ObsConfig::trace_events`] was set.
    pub events: Vec<PhaseEvent>,
    /// Phase events evicted from the bounded in-memory ring (oldest-first
    /// eviction once `trace_buffer_cap` is exceeded).
    pub dropped_events: u64,
    /// Causal span-graph events, in virtual-time order. Empty unless
    /// [`crate::ObsConfig::span_events`] was set.
    pub spans: Vec<SpanEvent>,
    /// Spans lost to the ring bound or the per-family cardinality caps.
    pub dropped_spans: u64,
    /// Windowed time-series (queue depths, utilization, in-flight txs,
    /// block-cut cadence). `None` when the sampler was disabled.
    pub metrics: Option<MetricsRecorder>,
    /// Per-station queueing/service attribution over committed transactions.
    pub bottleneck: BottleneckReport,
    /// Log-bucketed end-to-end latency histogram over committed transactions
    /// (whole run, warm-up included).
    pub e2e_hist: LogHistogram,
    /// The DES kernel's host-time self-profile. `None` unless
    /// [`crate::ObsConfig::profile`] was set. On a sharded run this is the
    /// label-wise sum of every shard's profile (total host CPU inside event
    /// loops, not elapsed time).
    pub profile: Option<KernelProfile>,
    /// Per-shard kernel self-profiles of a sharded run, in shard (= channel)
    /// order. Empty on the classic serial engine or when profiling is off.
    pub shard_profiles: Vec<KernelProfile>,
    /// Online health-plane report (regime timeline, bottleneck-shift onsets,
    /// SLO burn accounting). `None` unless
    /// [`crate::ObsConfig::health_events`] was set. On a sharded run the
    /// per-shard engines are merged canonically in shard order, so the
    /// report is byte-identical at every worker count.
    pub health: Option<HealthReport>,
}

impl RunObservability {
    /// The collected events as a JSONL document (one event per line).
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// The collected spans as a JSONL document (one span per line).
    pub fn spans_jsonl(&self) -> String {
        let mut out = String::new();
        for sp in &self.spans {
            out.push_str(&sp.to_json());
            out.push('\n');
        }
        out
    }
}

/// Detailed output of a run: the summary plus raw traces and block records.
#[derive(Debug)]
pub struct RunResult {
    /// Aggregated report over the measurement window.
    pub summary: SummaryReport,
    /// Every transaction's phase trace.
    pub traces: Vec<TxTrace>,
    /// `(cut time, tx count)` per block, in order.
    pub block_cuts: Vec<(SimTime, usize)>,
    /// Chain height at the observer peer at the end of the run.
    pub observer_height: u64,
    /// Whether the observer's chain verified end-to-end.
    pub chain_ok: bool,
    /// Final world state at the observer (key → value), for application-level
    /// assertions such as balance conservation.
    pub final_state: Vec<(String, Vec<u8>)>,
    /// Station utilizations over the run.
    pub utilization: UtilizationReport,
    /// Structured tracing, time-series and bottleneck attribution.
    pub observability: RunObservability,
}

struct PendingTx {
    proposal: Proposal,
    collector: EndorsementCollector,
    envelope: Option<Transaction>,
    timeout_event: Option<EventId>,
}

struct Pool {
    sdk: ClientSdk,
    selector: TargetSelector,
    prep: Station,
    recv: Station,
    egress: Link,
    pending: HashMap<TxId, PendingTx>,
    in_prep: usize,
    next_osn: u32,
    next_channel: u32,
    arrivals: RngStream,
    keys: RngStream,
}

struct PeerNode {
    /// One [`Peer`] per channel (separate ledgers on shared hardware).
    channels: Vec<Peer>,
    endorse: Station,
    /// VSCC stage of the validation pipeline: per-tx signature/policy checks
    /// over `validator_pool_size` workers per committer pipeline.
    vscc: Station,
    /// Serial MVCC + state/blockstore commit stage; one server per committer
    /// pipeline — this station is the queueing backbone of the validate phase.
    commit: Station,
    egress: Link,
    jitter: RngStream,
    /// Per-channel number of the next block this peer expects from its
    /// delivery stream; duplicates (e.g. failover replays) are dropped.
    next_expected_block: Vec<u64>,
    /// Gossip dissemination state (when the run uses gossip delivery;
    /// single-channel only).
    gossip: Option<GossipNode>,
}

struct OsnActor {
    /// One consensus/ordering instance per channel (its own Raft group /
    /// Kafka partition client), as in Fabric.
    nodes: Vec<OsnNode>,
    station: Station,
    egress: Link,
    subscribers: Vec<usize>,
    alive: bool,
    /// Blocks this OSN has emitted, kept for Deliver-style replay when a
    /// peer re-subscribes after its OSN crashed.
    delivered: Vec<Block>,
}

struct BrokerActor {
    /// One partition per channel (paper §III: a partition is a channel).
    partitions: Vec<Broker>,
    station: Station,
    egress: Link,
    alive: bool,
}

/// Per-run observability state carried alongside the world.
struct ObsState {
    sink: EventSink,
    /// Causal span-graph sink (bounded, deterministically head-sampled).
    spans: SpanSink,
    /// Per-tx station decomposition, parallel to `World::traces`.
    breakdowns: Vec<TxStationBreakdown>,
    recorder: Option<MetricsRecorder>,
    /// Online health plane (streaming regime/SLO detectors); `None` unless
    /// requested. Write-only, like every other surface in this struct.
    health: Option<OnlineHealth>,
    e2e_hist: LogHistogram,
    /// Block-cut count at the previous sampler tick (for the cadence series).
    last_block_cuts: usize,
    /// Live observability plane, if one is attached (write-only: the event
    /// loop never reads these values back, so scraping them concurrently
    /// cannot perturb a deterministic run).
    live: Option<Arc<LiveMetrics>>,
}

struct World {
    cfg: SimConfig,
    policy: Policy,
    pools: Vec<Pool>,
    peers: Vec<PeerNode>,
    osns: Vec<OsnActor>,
    brokers: Vec<BrokerActor>,
    /// One coordination ensemble per channel/partition.
    zks: Vec<ZkEnsemble>,
    channel_ids: Vec<ChannelId>,
    /// Precomputed channel id → local index lookup (replaces the old
    /// per-event linear scan).
    channel_lookup: HashMap<ChannelId, usize>,
    traces: Vec<TxTrace>,
    tx_index: HashMap<TxId, usize>,
    tx_pool: HashMap<TxId, usize>,
    block_cuts: Vec<(SimTime, usize)>,
    /// Per-channel next block number whose cut is still unrecorded.
    next_cut_number: Vec<u64>,
    observer: usize,
    obs: ObsState,
    /// Sharded-engine context; `None` on the classic serial engine.
    shard: Option<ShardCtx>,
}

type K = Kernel<World>;

/// A channel id that is not part of this world (or this world's shard).
#[derive(Debug, Clone, PartialEq, Eq)]
struct UnknownChannel(ChannelId);

impl std::fmt::Display for UnknownChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown channel `{}`", self.0 .0)
    }
}

impl std::error::Error for UnknownChannel {}

/// Construction parameters of one shard world (sharded engine only).
struct ShardSpec {
    /// This shard's index — identical to its global channel index.
    shard_id: usize,
    /// Every channel id of the run, indexed by global channel index.
    global_channels: Vec<ChannelId>,
}

/// Per-shard runtime state of the sharded engine. A shard owns one channel's
/// entire pipeline (peer instances, OSNs, brokers, one ZK ensemble, and
/// per-channel station lanes) plus the client pools *homed* on it
/// (`pool % n_shards == shard_id`): arrivals, prep and proposal egress run on
/// the home shard, and a transaction bound for another channel is exported to
/// that channel's shard through the conservative mailbox.
struct ShardCtx {
    /// This shard's index == its channel's global index.
    shard_id: usize,
    /// Every channel id of the run, indexed by global channel index.
    global_channels: Vec<ChannelId>,
    /// Cross-shard messages emitted this window: `(target shard, delivery
    /// time, message)`. Drained by the sharded kernel at the window barrier.
    outbox: Vec<(usize, SimTime, ShardMsg)>,
    /// Origin `(shard, seq)` of each local trace, parallel to
    /// [`World::traces`]. Home-created traces carry their own `(shard_id,
    /// local index)`; imported traces carry their home identity, which is the
    /// key the deterministic merge overwrites home stubs by.
    trace_src: Vec<(u32, u32)>,
    /// Transactions handed to another shard; their home stubs stay
    /// `InFlight` forever (replaced by the imported copy at merge time), so
    /// the in-flight gauge subtracts this count.
    exported: usize,
    /// Virtual times of every scheduled-but-unexecuted `pool.send` event on
    /// this shard — the only events that can emit cross-shard messages.
    /// The heap minimum feeds [`ShardWorld::emission_bound`].
    pending_sends: BinaryHeap<Reverse<SimTime>>,
    /// Guaranteed minimum delay between any event and a `pool.send` it
    /// schedules: client prep service floor (mean minus jitter bound) plus
    /// the SDK pre-processing delay. The emission bound extends to
    /// `next event + this` when no earlier send is already pending.
    min_send_delay: SimDuration,
}

/// The one cross-shard interaction: a client pool on its home shard hands a
/// fully prepared proposal to the shard that owns the target channel. The
/// delivery times were already computed through the home pool's egress link,
/// so they respect the lookahead contract (`transfer ≥ now + propagation`);
/// everything after endorsement fan-in (responses, assembly, ordering,
/// validation, commit) is local to the receiving shard.
enum ShardMsg {
    Proposal {
        /// Origin `(shard, trace seq)` identity of the transaction.
        src: (u32, u32),
        /// Global client-pool index (every shard builds lanes for all pools).
        pool: usize,
        proposal: Proposal,
        /// Endorsements the collector should expect (reachable targets).
        expected: usize,
        /// Per-endorser `(peer index, proposal arrival time)` fan-out.
        deliveries: Vec<(usize, SimTime)>,
        /// The transaction's phase trace so far (created/proposal_sent).
        trace: TxTrace,
        /// Station attribution so far (client prep).
        breakdown: TxStationBreakdown,
    },
}

/// The station class whose attribution is complete once a transaction
/// crosses `phase` — the snapshot point for the cumulative queue/service
/// totals stamped on phase events. Classes are pipeline-ordered, so
/// "through class C" means "summed over every class up to and including C".
/// Span-graph trace id of a block: channel index + block number.
fn block_trace(ch: usize, number: u64) -> String {
    format!("b{ch}.{number}")
}

fn through_class(phase: TracePhase) -> StationClass {
    match phase {
        TracePhase::Created | TracePhase::ProposalSent => StationClass::ClientPrep,
        // Endorsement fan-out and the client's response handling are both
        // settled by the time the envelope is assembled.
        TracePhase::Endorsed | TracePhase::Assembled | TracePhase::Submitted => {
            StationClass::PeerEndorse
        }
        TracePhase::OrderAcked | TracePhase::Ordered | TracePhase::Delivered => {
            StationClass::OsnCpu
        }
        TracePhase::VsccDone => StationClass::PeerVscc,
        // Commit, plus the terminal failures (whatever was attributed).
        TracePhase::Committed
        | TracePhase::OverloadDropped
        | TracePhase::EndorsementFailed
        | TracePhase::OrderingTimeout => StationClass::PeerCommit,
    }
}

impl World {
    fn trace_mut(&mut self, tx_id: TxId) -> Option<&mut TxTrace> {
        let idx = *self.tx_index.get(&tx_id)?;
        self.traces.get_mut(idx)
    }

    /// Records a structured phase event for a non-indexed transaction (no
    /// attribution to snapshot). Call sites must guard on
    /// `self.obs.sink.enabled()` before building the station string so that
    /// disabled tracing allocates nothing.
    fn emit(&mut self, now: SimTime, tx: String, phase: TracePhase, station: String, depth: usize) {
        if !tx_sampled(&tx, self.cfg.seed, self.cfg.obs.trace_sample) {
            return;
        }
        self.obs.sink.record(PhaseEvent {
            t_s: now.as_secs_f64(),
            tx,
            phase,
            station,
            queue_depth: depth as u64,
            cum_queued_s: 0.0,
            cum_service_s: 0.0,
        });
    }

    /// Records a structured phase event for an indexed transaction, stamping
    /// it with the tx's cumulative station attribution *through* the phase
    /// (see [`through_class`]) so the trace analyzer can split each
    /// inter-phase segment into queue-wait vs service. Same guard contract
    /// as [`World::emit`]. Read-only with respect to simulation state.
    fn emit_tx(
        &mut self,
        t: SimTime,
        tx_id: TxId,
        phase: TracePhase,
        station: String,
        depth: usize,
    ) {
        let tx = tx_id.short();
        if !tx_sampled(&tx, self.cfg.seed, self.cfg.obs.trace_sample) {
            return;
        }
        let (cum_queued_s, cum_service_s) = self
            .tx_index
            .get(&tx_id)
            .and_then(|&idx| self.obs.breakdowns.get(idx))
            .map(|b| b.cumulative_through(through_class(phase)))
            .unwrap_or((0.0, 0.0));
        self.obs.sink.record(PhaseEvent {
            t_s: t.as_secs_f64(),
            tx,
            phase,
            station,
            queue_depth: depth as u64,
            cum_queued_s,
            cum_service_s,
        });
    }

    /// Records one causal span. `trace` is the tx short id for tx-scoped
    /// kinds (gated on the sink's deterministic sampling decision) or the
    /// block identity `b{ch}.{number}` for block-scoped kinds (always
    /// recorded). Write-only with respect to simulation state; `t1` may lie
    /// in the future (the analyzer re-sorts).
    #[allow(clippy::too_many_arguments)]
    fn emit_span(
        &mut self,
        trace: &str,
        kind: SpanKind,
        actor: &str,
        t0: SimTime,
        t1: SimTime,
        hop: u32,
        parent_id: u64,
    ) {
        if !self.obs.spans.enabled() {
            return;
        }
        if kind.tx_scoped() && !self.obs.spans.wants_tx(trace) {
            return;
        }
        self.obs.spans.record(SpanEvent {
            span_id: span_id(trace, kind, actor, hop),
            parent_id,
            trace: trace.to_string(),
            kind,
            actor: actor.to_string(),
            t0_s: t0.as_secs_f64(),
            t1_s: t1.as_secs_f64(),
            hop,
        });
    }

    /// Records one infrastructure message-leg span (Raft/Kafka rounds).
    /// The same (trace, kind, actor) triple recurs every round, so the
    /// span's identity folds in its times ([`message_span_id`]).
    fn emit_msg_span(
        &mut self,
        trace: &str,
        kind: SpanKind,
        actor: &str,
        t0: SimTime,
        t1: SimTime,
    ) {
        if !self.obs.spans.enabled() {
            return;
        }
        let (t0_s, t1_s) = (t0.as_secs_f64(), t1.as_secs_f64());
        self.obs.spans.record(SpanEvent {
            span_id: message_span_id(trace, kind, actor, t0_s, t1_s),
            parent_id: 0,
            trace: trace.to_string(),
            kind,
            actor: actor.to_string(),
            t0_s,
            t1_s,
            hop: 0,
        });
    }

    /// Adds a sequential station visit to the tx's latency decomposition.
    fn attribute(
        &mut self,
        tx_id: TxId,
        class: StationClass,
        queued: SimDuration,
        service: SimDuration,
    ) {
        if let Some(&idx) = self.tx_index.get(&tx_id) {
            if let Some(b) = self.obs.breakdowns.get_mut(idx) {
                b.add(class, queued.as_secs_f64(), service.as_secs_f64());
            }
        }
    }

    /// Folds in one of several parallel station visits (critical path only).
    fn attribute_max(
        &mut self,
        tx_id: TxId,
        class: StationClass,
        queued: SimDuration,
        service: SimDuration,
    ) {
        if let Some(&idx) = self.tx_index.get(&tx_id) {
            if let Some(b) = self.obs.breakdowns.get_mut(idx) {
                b.add_max(class, queued.as_secs_f64(), service.as_secs_f64());
            }
        }
    }

    fn ms(&self, x: f64) -> SimDuration {
        SimDuration::from_millis_f64(x.max(0.0))
    }

    /// Peer index for a policy principal (`OrgN.peer` → endorsing peer N-1).
    fn peer_of(&self, principal: &Principal) -> usize {
        (principal.org.0 - 1) as usize
    }

    /// Local channel index for a channel id, from the precomputed lookup.
    /// On a shard world only the shard's own channel resolves; anything else
    /// is [`UnknownChannel`] (callers drop the event or export the work).
    fn channel_index(&self, id: &ChannelId) -> Result<usize, UnknownChannel> {
        self.channel_lookup
            .get(id)
            .copied()
            .ok_or_else(|| UnknownChannel(id.clone()))
    }

    /// Appends a trace, recording its home `(shard, seq)` origin when this
    /// world is a shard, and returns its local index.
    fn push_trace(&mut self, trace: TxTrace) -> usize {
        let seq = self.traces.len();
        if let Some(s) = &mut self.shard {
            s.trace_src.push((s.shard_id as u32, seq as u32));
        }
        self.traces.push(trace);
        seq
    }

    /// Number of channels in the whole run (a shard world's local
    /// `channel_ids` holds only its own channel).
    fn total_channels(&self) -> usize {
        self.shard
            .as_ref()
            .map_or(self.channel_ids.len(), |s| s.global_channels.len())
    }

    /// The channel id at *global* index `gc`.
    fn global_channel_id(&self, gc: usize) -> ChannelId {
        match &self.shard {
            Some(s) => s.global_channels[gc].clone(),
            None => self.channel_ids[gc].clone(),
        }
    }

    /// Global channel index of local channel `local` — shard worlds own
    /// exactly their shard's channel, so trace identities (`b{ch}.{n}`,
    /// `ch{ch}`) stay collision-free across shards.
    fn global_ch(&self, local: usize) -> usize {
        self.shard.as_ref().map_or(local, |s| s.shard_id)
    }

    /// `Some(target shard)` when `id` is another shard's channel (the
    /// transaction must be exported); `None` when it is local.
    fn export_target(&self, id: &ChannelId) -> Option<usize> {
        let s = self.shard.as_ref()?;
        if self.channel_lookup.contains_key(id) {
            return None;
        }
        s.global_channels.iter().position(|c| c == id)
    }

    /// Whether client pool `p` runs its arrival process on this world
    /// (shards home pool `p` at shard `p % n_shards`; the serial engine
    /// homes every pool).
    fn pool_is_homed(&self, p: usize) -> bool {
        self.shard
            .as_ref()
            .is_none_or(|s| p % s.global_channels.len() == s.shard_id)
    }
}

/// One configured simulation run.
#[derive(Debug)]
pub struct Simulation {
    cfg: SimConfig,
    faults: FaultPlan,
    live: Option<Arc<LiveMetrics>>,
}

impl Simulation {
    /// Creates a simulation from a validated configuration.
    ///
    /// If a process-global [`LiveMetrics`] bundle was installed (see
    /// [`crate::live::install_global`]), the run reports into it; use
    /// [`Simulation::with_live_metrics`] to attach an explicit bundle instead.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(cfg: SimConfig) -> Self {
        // lint:allow(no-unwrap-in-lib) -- constructor fail-fast: an invalid config is a caller
        // bug
        cfg.validate().expect("invalid simulation config");
        Simulation {
            cfg,
            faults: FaultPlan::default(),
            live: crate::live::global(),
        }
    }

    /// Adds fault injections to the run.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches an explicit live-metrics bundle (overriding any process
    /// global). The run bumps its counters and gauges as virtual time
    /// advances; an exporter thread can scrape them concurrently.
    pub fn with_live_metrics(mut self, live: Arc<LiveMetrics>) -> Self {
        self.live = Some(live);
        self
    }

    /// Runs to completion and returns the summary report.
    pub fn run(self) -> SummaryReport {
        self.run_detailed().summary
    }

    /// Runs to completion and returns summary + raw traces.
    ///
    /// `sim_workers == 0` runs the classic serial engine; any positive value
    /// runs the sharded engine (one event loop per channel), whose results
    /// are byte-identical at every worker count.
    pub fn run_detailed(self) -> RunResult {
        if self.cfg.sim_workers > 0 {
            return self.run_sharded();
        }
        let cfg = self.cfg;
        let faults = self.faults;
        let mut world = build_world(&cfg, self.live, None);
        let mut kernel: K = Kernel::new();
        let end = SimTime::from_secs_f64(cfg.duration_secs);
        kernel.set_horizon(end);
        if cfg.obs.profile {
            kernel.enable_profiler();
        }

        if let Some(live) = &world.obs.live {
            live.runs_started.inc();
        }
        bootstrap(&mut world, &mut kernel);
        schedule_faults(&faults, &mut kernel);
        kernel.run(&mut world);
        let profile = kernel.take_profile();
        flush_partial_tick(&mut world, end);
        if let Some(live) = &world.obs.live {
            live.runs_completed.inc();
        }

        let w0 = SimTime::from_secs_f64(cfg.warmup_secs);
        let w1 = SimTime::from_secs_f64(cfg.duration_secs - cfg.cooldown_secs);
        let mut summary = summarize(
            &world.traces,
            &world.block_cuts,
            (w0, w1),
            cfg.arrival_rate_tps,
        );
        summary.seed = cfg.seed;
        summary.config_digest = cfg.digest();
        let horizon = SimTime::from_secs_f64(cfg.duration_secs);
        let utilization = UtilizationReport {
            pool_prep: world
                .pools
                .iter()
                .map(|p| p.prep.utilization(horizon))
                .collect(),
            pool_recv: world
                .pools
                .iter()
                .map(|p| p.recv.utilization(horizon))
                .collect(),
            peer_endorse: world
                .peers
                .iter()
                .map(|p| p.endorse.utilization(horizon))
                .collect(),
            peer_vscc: world
                .peers
                .iter()
                .map(|p| p.vscc.utilization(horizon))
                .collect(),
            peer_commit: world
                .peers
                .iter()
                .map(|p| p.commit.utilization(horizon))
                .collect(),
            osn_cpu: world
                .osns
                .iter()
                .map(|o| o.station.utilization(horizon))
                .collect(),
        };
        let observer = &world.peers[world.observer];
        let multi = observer.channels.len() > 1;
        let mut final_state = Vec::new();
        for (c, peer) in observer.channels.iter().enumerate() {
            for (key, v) in peer.ledger().state().range("", "") {
                let key = if multi {
                    format!("ch{c}/{key}")
                } else {
                    key.to_string()
                };
                final_state.push((key, v.value.clone()));
            }
        }
        let observer_height: u64 = observer.channels.iter().map(|p| p.ledger().height()).sum();
        let chain_ok = observer
            .channels
            .iter()
            .all(|p| p.ledger().blocks().verify_chain().is_ok());
        // Attribute latency over committed txs; window coarse enough to hold
        // a useful population but fine enough to show regime changes.
        let window_s = (cfg.duration_secs / 10.0).clamp(1.0, 10.0);
        let committed: Vec<TxStationBreakdown> = world
            .traces
            .iter()
            .zip(&world.obs.breakdowns)
            .filter(|(t, _)| matches!(t.outcome, TxOutcome::Committed(_)))
            .map(|(_, b)| b.clone())
            .collect();
        // Handlers may stamp events at staggered per-tx times (e.g. commit
        // times within a block), so restore global time order; the sort is
        // stable, preserving causal order at equal timestamps.
        let dropped_events = world.obs.sink.dropped_events();
        let mut events = world.obs.sink.into_events();
        events.sort_by(|a, b| a.t_s.total_cmp(&b.t_s));
        let dropped_spans = world.obs.spans.dropped_spans();
        let mut spans = world.obs.spans.into_spans();
        spans.sort_by(|a, b| {
            a.t0_s
                .total_cmp(&b.t0_s)
                .then(a.t1_s.total_cmp(&b.t1_s))
                .then(a.span_id.cmp(&b.span_id))
        });
        let health = world.obs.health.map(|h| {
            let mut r = h.into_report();
            r.sort_events();
            r
        });
        let observability = RunObservability {
            events,
            dropped_events,
            spans,
            dropped_spans,
            metrics: world.obs.recorder,
            bottleneck: BottleneckReport::from_breakdowns(&committed, window_s),
            e2e_hist: world.obs.e2e_hist,
            profile,
            shard_profiles: Vec::new(),
            health,
        };
        RunResult {
            summary,
            observer_height,
            chain_ok,
            final_state,
            utilization,
            observability,
            traces: world.traces,
            block_cuts: world.block_cuts,
        }
    }

    /// The sharded engine: one event loop per channel shard, run on
    /// `min(sim_workers, channels)` worker threads under a conservative
    /// synchronization barrier whose lookahead is the link propagation
    /// delay. Merge points (traces, block cuts, spans, series, histograms,
    /// profiles, ledger state) are all worker-count-invariant, so the
    /// returned report is byte-identical at any positive worker count.
    fn run_sharded(self) -> RunResult {
        let cfg = self.cfg;
        let faults = self.faults;
        let n_shards = cfg.channels as usize;
        let global_channels: Vec<ChannelId> = if n_shards == 1 {
            vec![ChannelId::default_channel()]
        } else {
            (0..n_shards)
                .map(|c| ChannelId(format!("channel{c}")))
                .collect()
        };
        let end = SimTime::from_secs_f64(cfg.duration_secs);
        if let Some(live) = &self.live {
            live.runs_started.inc();
        }
        // The conservative lookahead: no cross-shard interaction can land
        // earlier than one link propagation after it was emitted.
        let mut sharded: ShardedKernel<World> =
            ShardedKernel::new(SimDuration::from_millis_f64(cfg.cost.link_propagation_ms));
        sharded.set_horizon(end);
        for shard_id in 0..n_shards {
            let spec = ShardSpec {
                shard_id,
                global_channels: global_channels.clone(),
            };
            let mut world = build_world(&cfg, self.live.clone(), Some(spec));
            let mut kernel: K = Kernel::new();
            kernel.set_horizon(end);
            bootstrap(&mut world, &mut kernel);
            schedule_faults(&faults, &mut kernel);
            sharded.push_shard(kernel, world);
        }
        if cfg.obs.profile {
            sharded.enable_profiler();
        }
        let report = sharded.run((cfg.sim_workers as usize).min(n_shards));
        if std::env::var_os("FABRICSIM_SHARD_DEBUG").is_some() {
            eprintln!(
                "sharded run: {} windows, {} cross-shard messages, {} events",
                report.windows, report.messages, report.stats.executed
            );
        }
        let shard_profiles: Vec<KernelProfile> =
            sharded.take_profiles().into_iter().flatten().collect();
        let mut worlds = sharded.into_worlds();
        for w in &mut worlds {
            flush_partial_tick(w, end);
        }
        if let Some(live) = &self.live {
            live.runs_completed.inc();
        }

        // ---- deterministic merge --------------------------------------------
        // Utilization first (read-only): lanes of one entity sum busy time
        // over summed provisioned servers.
        let horizon_s = end.as_secs_f64();
        let merge_util = |per_world: Vec<Vec<(SimDuration, usize)>>| -> Vec<f64> {
            let n = per_world.first().map_or(0, Vec::len);
            (0..n)
                .map(|i| {
                    let busy: f64 = per_world.iter().map(|w| w[i].0.as_secs_f64()).sum();
                    let servers: usize = per_world.iter().map(|w| w[i].1).sum();
                    busy / (horizon_s * servers.max(1) as f64)
                })
                .collect()
        };
        let lanes =
            |f: &dyn Fn(&World) -> Vec<(SimDuration, usize)>| -> Vec<Vec<(SimDuration, usize)>> {
                worlds.iter().map(f).collect()
            };
        let station_lane = |s: &Station| (s.busy_time(), s.servers());
        let utilization = UtilizationReport {
            pool_prep: merge_util(lanes(&|w| {
                w.pools.iter().map(|p| station_lane(&p.prep)).collect()
            })),
            pool_recv: merge_util(lanes(&|w| {
                w.pools.iter().map(|p| station_lane(&p.recv)).collect()
            })),
            peer_endorse: merge_util(lanes(&|w| {
                w.peers.iter().map(|p| station_lane(&p.endorse)).collect()
            })),
            peer_vscc: merge_util(lanes(&|w| {
                w.peers.iter().map(|p| station_lane(&p.vscc)).collect()
            })),
            peer_commit: merge_util(lanes(&|w| {
                w.peers.iter().map(|p| station_lane(&p.commit)).collect()
            })),
            osn_cpu: merge_util(lanes(&|w| {
                w.osns.iter().map(|o| station_lane(&o.station)).collect()
            })),
        };

        // Trace merge: slot (shard, seq) is a transaction's home identity.
        // A home-created copy fills its slot unless the completed imported
        // copy (same identity, from the channel shard that finished the tx)
        // already claimed it; imports always win. Slots left empty are the
        // positions imports occupied in their *destination* world's vec.
        let sizes: Vec<usize> = worlds.iter().map(|w| w.traces.len()).collect();
        let mut slots: Vec<Vec<Option<(TxTrace, TxStationBreakdown)>>> = sizes
            .iter()
            .map(|&n| (0..n).map(|_| None).collect())
            .collect();

        let multi = n_shards > 1;
        let mut final_state = Vec::new();
        let mut observer_height = 0u64;
        let mut chain_ok = true;
        let mut block_cuts: Vec<(SimTime, usize)> = Vec::new();
        let mut dropped_events = 0u64;
        let mut events = Vec::new();
        let mut dropped_spans = 0u64;
        let mut spans = Vec::new();
        let mut recorder: Option<MetricsRecorder> = None;
        let mut health: Option<HealthReport> = None;
        let mut e2e_hist = LogHistogram::latency();

        for (s, w) in worlds.into_iter().enumerate() {
            {
                let observer = &w.peers[w.observer];
                for peer in &observer.channels {
                    for (key, v) in peer.ledger().state().range("", "") {
                        let key = if multi {
                            format!("ch{s}/{key}")
                        } else {
                            key.to_string()
                        };
                        final_state.push((key, v.value.clone()));
                    }
                    observer_height += peer.ledger().height();
                    chain_ok &= peer.ledger().blocks().verify_chain().is_ok();
                }
            }
            block_cuts.extend(w.block_cuts);
            dropped_events += w.obs.sink.dropped_events();
            events.extend(w.obs.sink.into_events());
            dropped_spans += w.obs.spans.dropped_spans();
            spans.extend(w.obs.spans.into_spans());
            if let Some(r) = w.obs.recorder {
                match recorder.as_mut() {
                    None => recorder = Some(r),
                    Some(acc) => acc.absorb(&r),
                }
            }
            // Shard-order concatenation; one canonical sort after the loop
            // keeps the merged health timeline worker-count-invariant.
            if let Some(h) = w.obs.health {
                let r = h.into_report();
                match health.as_mut() {
                    None => health = Some(r),
                    Some(acc) => acc.merge(r),
                }
            }
            e2e_hist.merge(&w.obs.e2e_hist);
            let src_list = w.shard.map(|ctx| ctx.trace_src).unwrap_or_default();
            debug_assert_eq!(src_list.len(), w.traces.len());
            for ((trace, breakdown), (src_shard, src_seq)) in
                w.traces.into_iter().zip(w.obs.breakdowns).zip(src_list)
            {
                let (home, seq) = (src_shard as usize, src_seq as usize);
                let imported = home != s;
                if imported || slots[home][seq].is_none() {
                    slots[home][seq] = Some((trace, breakdown));
                }
            }
        }
        // Stable sorts: ties keep shard order, so the merged streams are
        // identical at every worker count.
        block_cuts.sort_by_key(|c| c.0);
        events.sort_by(|a, b| a.t_s.total_cmp(&b.t_s));
        spans.sort_by(|a, b| {
            a.t0_s
                .total_cmp(&b.t0_s)
                .then(a.t1_s.total_cmp(&b.t1_s))
                .then(a.span_id.cmp(&b.span_id))
        });
        let mut merged: Vec<(TxTrace, TxStationBreakdown)> =
            slots.into_iter().flatten().flatten().collect();
        merged.sort_by_key(|m| m.0.created);
        let (traces, breakdowns): (Vec<TxTrace>, Vec<TxStationBreakdown>) =
            merged.into_iter().unzip();

        let w0 = SimTime::from_secs_f64(cfg.warmup_secs);
        let w1 = SimTime::from_secs_f64(cfg.duration_secs - cfg.cooldown_secs);
        let mut summary = summarize(&traces, &block_cuts, (w0, w1), cfg.arrival_rate_tps);
        summary.seed = cfg.seed;
        summary.config_digest = cfg.digest();
        let window_s = (cfg.duration_secs / 10.0).clamp(1.0, 10.0);
        let committed: Vec<TxStationBreakdown> = traces
            .iter()
            .zip(&breakdowns)
            .filter(|(t, _)| matches!(t.outcome, TxOutcome::Committed(_)))
            .map(|(_, b)| b.clone())
            .collect();
        let profile = (!shard_profiles.is_empty()).then(|| {
            let mut total = KernelProfile::default();
            for p in &shard_profiles {
                total.absorb(p);
            }
            total
        });
        if let Some(h) = health.as_mut() {
            h.sort_events();
        }
        let observability = RunObservability {
            events,
            dropped_events,
            spans,
            dropped_spans,
            metrics: recorder,
            bottleneck: BottleneckReport::from_breakdowns(&committed, window_s),
            e2e_hist,
            profile,
            shard_profiles,
            health,
        };
        RunResult {
            summary,
            observer_height,
            chain_ok,
            final_state,
            utilization,
            observability,
            traces,
            block_cuts,
        }
    }
}

// ---- world construction ------------------------------------------------------

fn build_world(cfg: &SimConfig, live: Option<Arc<LiveMetrics>>, shard: Option<ShardSpec>) -> World {
    // A shard world owns exactly one channel; the serial engine owns all of
    // them. Station capacities and per-channel structures below size off the
    // *local* channel count, which hands each shard its exact per-channel
    // share of the validate pipeline.
    let channel_ids: Vec<ChannelId> = match &shard {
        Some(s) => vec![s.global_channels[s.shard_id].clone()],
        None => {
            let n = cfg.channels as usize;
            if n == 1 {
                vec![ChannelId::default_channel()]
            } else {
                (0..n).map(|c| ChannelId(format!("channel{c}"))).collect()
            }
        }
    };
    let n_channels = channel_ids.len();
    // Identity material is identical in every shard: same CA seed, same
    // enrollment sequence (independent of the channel restriction), so
    // signatures verify across shard boundaries.
    let policy = cfg.policy.resolve(cfg.endorsing_peers);
    let ca = CertificateAuthority::new("fabric-ca", cfg.seed);
    let root = RngStream::derive(cfg.seed, "world");
    // Per-shard jitter streams are salted so shards don't draw correlated
    // endorse-path jitter; pool streams keep the serial derivation (they are
    // only consumed on a pool's home shard).
    let jitter_salt = shard
        .as_ref()
        .map_or(0, |s| 100_000 * (s.shard_id as u64 + 1));
    let shard_channel = shard.as_ref().map_or(0, |s| s.shard_id as u32);
    let m = &cfg.cost;

    // Peers: endorsers 0..n-1 (Org i+1), then committers (observer first).
    let n_endorsers = cfg.endorsing_peers as usize;
    let n_peers = n_endorsers + cfg.committing_peers as usize;
    let mut peers = Vec::with_capacity(n_peers);
    let mut endorser_identities = Vec::new();
    for i in 0..n_peers {
        let is_endorser = i < n_endorsers;
        let org = if is_endorser {
            i as u32 + 1
        } else {
            100 + i as u32
        };
        let identity = ca.enroll(Principal::peer(OrgId(org)), &format!("peer{i}"));
        if is_endorser {
            endorser_identities.push(identity.clone());
        }
        let mut channel_peers = Vec::with_capacity(n_channels);
        for channel in &channel_ids {
            let mut peer = Peer::new(
                identity.clone(),
                Msp::new(ca.root_of_trust()),
                PeerConfig {
                    channel: channel.clone(),
                    endorsement_policy: policy.clone(),
                    is_endorser,
                    validator_pool_size: m.validator_pool_size.max(1),
                },
            );
            match &cfg.workload {
                WorkloadKind::KvPut { .. } | WorkloadKind::KvRmw { .. } => {
                    peer.install_chaincode(Box::new(KvWrite));
                }
                WorkloadKind::Transfer { accounts } => {
                    peer.install_chaincode(Box::new(AssetTransfer {
                        accounts: *accounts,
                        initial_balance: 1_000_000,
                    }));
                }
                WorkloadKind::Smallbank { customers } => {
                    peer.install_chaincode(Box::new(Smallbank {
                        customers: *customers,
                        initial_balance: 10_000,
                    }));
                }
            }
            channel_peers.push(peer);
        }
        let gossip = cfg.gossip.as_ref().map(|g| {
            let neighbours: Vec<u32> = (0..n_peers as u32).filter(|&j| j != i as u32).collect();
            GossipNode::new(
                i as u32,
                neighbours,
                g.fanout,
                cfg.seed ^ 0x60551 ^ i as u64,
            )
        });
        peers.push(PeerNode {
            channels: channel_peers,
            next_expected_block: vec![0; n_channels],
            gossip,
            endorse: Station::new(format!("peer{i}.endorse"), m.peer_endorse_threads),
            // One committer pipeline per channel on shared cores (Fabric runs
            // a commit goroutine per channel); each pipeline fans its VSCC
            // checks out over the validator pool while commit stays serial.
            vscc: Station::new(
                format!("peer{i}.vscc"),
                m.validator_pool_size.max(1) * m.validate_threads * n_channels,
            ),
            commit: Station::new(format!("peer{i}.commit"), m.validate_threads * n_channels),
            egress: Link::new(
                format!("peer{i}.nic"),
                m.link_bandwidth_bps,
                SimDuration::from_millis_f64(m.link_propagation_ms),
            ),
            jitter: root.child(1000 + i as u64 + jitter_salt),
        });
    }

    // Register endorser keys and client certificates on every peer.
    let mut clients = Vec::new();
    for p in 0..n_endorsers {
        let client_identity = ca.enroll(
            Principal {
                org: OrgId(p as u32 + 1),
                role: "client".into(),
            },
            &format!("client{p}"),
        );
        clients.push((ClientId(p as u32), client_identity));
    }
    for node in &mut peers {
        for peer in &mut node.channels {
            for endorser in &endorser_identities {
                peer.register_endorser(
                    endorser.principal().clone(),
                    endorser.certificate().public_key,
                );
            }
            for (cid, cident) in &clients {
                peer.register_client(*cid, cident.certificate().clone());
            }
        }
    }

    // Client pools: one per endorsing peer.
    let mut pools = Vec::with_capacity(n_endorsers);
    for (p, (cid, cident)) in clients.into_iter().enumerate() {
        let mut selector = TargetSelector::new(&policy);
        // Stagger rotation so pools spread load from t=0.
        for _ in 0..p % selector.set_count().max(1) {
            selector.next_targets();
        }
        pools.push(Pool {
            sdk: ClientSdk::new(cid, cident),
            selector,
            prep: Station::new(format!("pool{p}.prep"), 1),
            recv: Station::new(format!("pool{p}.recv"), m.client_recv_threads),
            egress: Link::new(
                format!("pool{p}.nic"),
                m.link_bandwidth_bps,
                SimDuration::from_millis_f64(m.link_propagation_ms),
            ),
            pending: HashMap::new(),
            in_prep: 0,
            next_osn: p as u32,
            next_channel: p as u32,
            arrivals: root.child(p as u64),
            keys: root.child(500 + p as u64),
        });
    }

    // OSNs.
    let osn_count = cfg.effective_osns() as usize;
    let mut osns = Vec::with_capacity(osn_count);
    for o in 0..osn_count {
        let nodes: Vec<OsnNode> = channel_ids
            .iter()
            .enumerate()
            .map(|(c, channel)| match cfg.orderer_type {
                OrdererType::Solo => OsnNode::solo(o as u32, channel.clone(), cfg.batch),
                OrdererType::Raft => OsnNode::raft(
                    o as u32,
                    channel.clone(),
                    cfg.batch,
                    (0..osn_count as u32).collect(),
                    // Raft group seed keys off the *global* channel index so
                    // every channel's group elects independently, sharded or
                    // not.
                    cfg.seed
                        ^ 0xABCD
                        ^ o as u64
                        ^ ((shard.as_ref().map_or(c, |s| s.shard_id) as u64) << 32),
                ),
                OrdererType::Kafka => OsnNode::kafka(
                    o as u32,
                    channel.clone(),
                    cfg.batch,
                    (0..cfg.broker_count).collect(),
                ),
            })
            .collect();
        osns.push(OsnActor {
            nodes,
            station: Station::new(format!("osn{o}.cpu"), m.osn_cpu_threads),
            egress: Link::new(
                format!("osn{o}.nic"),
                m.link_bandwidth_bps,
                SimDuration::from_millis_f64(m.link_propagation_ms),
            ),
            subscribers: match &cfg.gossip {
                None => (0..n_peers).filter(|p| p % osn_count == o).collect(),
                Some(g) => {
                    // Only leader peers subscribe; they spread across OSNs.
                    let leaders = (g.leader_peers as usize).min(n_peers);
                    (0..leaders).filter(|p| p % osn_count == o).collect()
                }
            },
            alive: true,
            delivered: Vec::new(),
        });
    }

    // Kafka substrate.
    let (brokers, zks) = if cfg.orderer_type == OrdererType::Kafka {
        let brokers = (0..cfg.broker_count)
            .map(|b| BrokerActor {
                partitions: (0..n_channels)
                    .map(|_| {
                        Broker::new(
                            b,
                            KafkaConfig {
                                replication_factor: cfg.broker_count.min(3) as usize,
                                ..KafkaConfig::default()
                            },
                        )
                    })
                    .collect(),
                station: Station::new(format!("broker{b}.cpu"), m.broker_cpu_threads),
                egress: Link::new(
                    format!("broker{b}.nic"),
                    m.link_bandwidth_bps,
                    SimDuration::from_millis_f64(m.link_propagation_ms),
                ),
                alive: true,
            })
            .collect();
        let zks = (0..n_channels)
            .map(|_| {
                ZkEnsemble::new(
                    cfg.zk_count as usize,
                    (0..cfg.broker_count).collect(),
                    4, // sessions expire after 4 missed zk ticks (~2 s)
                )
            })
            .collect();
        (brokers, zks)
    } else {
        (Vec::new(), Vec::new())
    };

    let channel_lookup: HashMap<ChannelId, usize> = channel_ids
        .iter()
        .enumerate()
        .map(|(i, c)| (c.clone(), i))
        .collect();
    World {
        policy,
        channel_lookup,
        channel_ids,
        pools,
        observer: n_endorsers,
        peers,
        osns,
        brokers,
        zks,
        traces: Vec::new(),
        tx_index: HashMap::new(),
        tx_pool: HashMap::new(),
        block_cuts: Vec::new(),
        next_cut_number: vec![0; n_channels],
        shard: shard.map(|s| ShardCtx {
            shard_id: s.shard_id,
            global_channels: s.global_channels,
            outbox: Vec::new(),
            trace_src: Vec::new(),
            exported: 0,
            pending_sends: BinaryHeap::new(),
            min_send_delay: SimDuration::from_millis_f64(
                (cfg.cost.client_prep_ms - cfg.cost.client_prep_jitter_ms).max(0.0)
                    + cfg.cost.sdk_pre_ms,
            ),
        }),
        obs: ObsState {
            sink: if cfg.obs.trace_events {
                EventSink::in_memory_bounded(cfg.obs.trace_buffer_cap)
            } else {
                EventSink::disabled()
            },
            spans: if cfg.obs.span_events {
                SpanSink::bounded(
                    cfg.seed,
                    cfg.obs.trace_sample,
                    cfg.obs.trace_buffer_cap,
                    DEFAULT_SPAN_KIND_CAP,
                )
            } else {
                SpanSink::disabled()
            },
            breakdowns: Vec::new(),
            recorder: (cfg.obs.sample_period_s > 0.0)
                .then(|| MetricsRecorder::new(cfg.obs.sample_period_s)),
            health: cfg.obs.health_events.then(|| {
                // One engine per event-loop world: the whole run on the
                // serial engine (channel 0 aggregate), one per channel shard
                // on the sharded engine. The window matches the sampler
                // cadence (1 s fallback mirrors `sample_period_s()`).
                let window = if cfg.obs.sample_period_s > 0.0 {
                    cfg.obs.sample_period_s
                } else {
                    1.0
                };
                OnlineHealth::new(
                    shard_channel,
                    window,
                    HealthConfig::with_slo(cfg.obs.slo_p99_s),
                )
            }),
            e2e_hist: LogHistogram::latency(),
            last_block_cuts: 0,
            live,
        },
        cfg: cfg.clone(),
    }
}

// ---- bootstrap ---------------------------------------------------------------

fn bootstrap(world: &mut World, k: &mut K) {
    // Arrival processes (on a shard world, only for the pools homed here).
    for p in 0..world.pools.len() {
        if world.pool_is_homed(p) {
            schedule_next_arrival(world, k, p);
        }
    }
    // Time-series sampler (reads state only: scheduling it never perturbs
    // the simulated system, so traced and untraced runs stay bit-identical).
    // A live-metrics bundle keeps the sweep running even when the recorder
    // is disabled, so an exporter always has fresh gauges to serve.
    if world.obs.recorder.is_some() || world.obs.live.is_some() || world.obs.health.is_some() {
        let period = SimDuration::from_secs_f64(sample_period_s(world));
        k.schedule_in_labeled(period, "obs.sample", obs_sample);
    }
    // OSN ticks (Raft elections/heartbeats; Kafka consume polling).
    if world.cfg.orderer_type != OrdererType::Solo {
        let period = world.ms(world.cfg.cost.osn_tick_ms);
        for o in 0..world.osns.len() {
            k.schedule_in_labeled(period, "osn.tick", move |w, k| osn_tick(w, k, o));
        }
    }
    // Gossip anti-entropy pulls.
    if let Some(g) = world.cfg.gossip {
        let period = world.ms(g.anti_entropy_ms as f64);
        for peer_idx in 0..world.peers.len() {
            k.schedule_in_labeled(period, "gossip.tick", move |w, k| {
                gossip_tick(w, k, peer_idx)
            });
        }
    }
    // Kafka broker ticks + ZK heartbeats + ZK tick.
    if world.cfg.orderer_type == OrdererType::Kafka {
        let bt = world.ms(world.cfg.cost.broker_tick_ms);
        for b in 0..world.brokers.len() {
            k.schedule_in_labeled(bt, "broker.tick", move |w, k| broker_tick(w, k, b));
        }
        let hb = world.ms(world.cfg.cost.zk_heartbeat_ms);
        for b in 0..world.brokers.len() {
            // First heartbeat immediately: bootstraps leader election.
            k.schedule_in_labeled(SimDuration::ZERO, "broker.heartbeat", move |w, k| {
                broker_heartbeat(w, k, b);
            });
            let _ = hb;
        }
        k.schedule_in_labeled(world.ms(500.0), "zk.tick", zk_tick);
    }
}

/// One read-only sweep of the gauges both sampling surfaces consume.
struct GaugeSweep {
    pool_prep: usize,
    pool_recv: usize,
    peer_endorse: usize,
    peer_vscc: usize,
    peer_commit: usize,
    osn_cpu: usize,
    vscc_util: f64,
    commit_util: f64,
    inflight: usize,
    /// Blocks cut since the previous sweep.
    new_cuts: usize,
    /// Cumulative busy seconds per health-plane station class
    /// ([`fabricsim_obs::HEALTH_STATIONS`] order). Busy time accrues at
    /// submit, so differencing consecutive sweeps yields the *offered* work
    /// per window — the health plane's saturation signal.
    busy_s: [f64; HEALTH_STATION_COUNT],
    /// Provisioned servers per health-plane station class.
    servers: [f64; HEALTH_STATION_COUNT],
}

fn sweep_gauges(world: &mut World, now: SimTime) -> GaugeSweep {
    let cuts = world.block_cuts.len();
    let new_cuts = cuts - world.obs.last_block_cuts;
    world.obs.last_block_cuts = cuts;
    // Cumulative (busy seconds, servers) per health-plane station class,
    // summed over the class's stations, in HEALTH_STATIONS order.
    let mut busy_s = [0.0; HEALTH_STATION_COUNT];
    let mut servers = [0.0; HEALTH_STATION_COUNT];
    {
        let mut lane = |i: usize, s: &Station| {
            busy_s[i] += s.busy_time().as_secs_f64();
            servers[i] += s.servers() as f64;
        };
        for p in &world.pools {
            lane(0, &p.prep);
            lane(1, &p.recv);
        }
        for p in &world.peers {
            lane(2, &p.endorse);
            lane(3, &p.vscc);
            lane(4, &p.commit);
        }
        for o in &world.osns {
            lane(5, &o.station);
        }
    }
    GaugeSweep {
        busy_s,
        servers,
        pool_prep: world.pools.iter().map(|p| p.prep.jobs_in_system(now)).sum(),
        pool_recv: world.pools.iter().map(|p| p.recv.jobs_in_system(now)).sum(),
        peer_endorse: world
            .peers
            .iter()
            .map(|p| p.endorse.jobs_in_system(now))
            .sum(),
        peer_vscc: world.peers.iter().map(|p| p.vscc.jobs_in_system(now)).sum(),
        peer_commit: world
            .peers
            .iter()
            .map(|p| p.commit.jobs_in_system(now))
            .sum(),
        osn_cpu: world
            .osns
            .iter()
            .map(|o| o.station.jobs_in_system(now))
            .sum(),
        vscc_util: world
            .peers
            .iter()
            .map(|p| p.vscc.utilization(now))
            .fold(0.0, f64::max),
        commit_util: world
            .peers
            .iter()
            .map(|p| p.commit.utilization(now))
            .fold(0.0, f64::max),
        inflight: world
            .traces
            .iter()
            .filter(|t| matches!(t.outcome, TxOutcome::InFlight))
            .count()
            // Exported home stubs stay InFlight forever; the receiving shard
            // counts the live copy.
            .saturating_sub(world.shard.as_ref().map_or(0, |s| s.exported)),
        new_cuts,
    }
}

/// Publishes a sweep to the live plane's gauges, if one is attached. In a
/// sharded run only shard 0 drives the gauges (counters stay cross-shard:
/// they are atomic and increment-only); gauges then cover shard 0's slice
/// of the world, which keeps the exporter deterministic-read safe without
/// cross-thread coordination.
fn publish_live(world: &World, now: SimTime, s: &GaugeSweep) {
    let Some(live) = &world.obs.live else { return };
    if world.shard.as_ref().is_some_and(|sh| sh.shard_id != 0) {
        return;
    }
    live.sim_time.set(now.as_secs_f64());
    live.inflight.set(s.inflight as f64);
    live.q_pool_prep.set(s.pool_prep as f64);
    live.q_pool_recv.set(s.pool_recv as f64);
    live.q_peer_endorse.set(s.peer_endorse as f64);
    live.q_peer_vscc.set(s.peer_vscc as f64);
    live.q_peer_commit.set(s.peer_commit as f64);
    live.q_osn_cpu.set(s.osn_cpu as f64);
    live.util_peer_vscc.set(s.vscc_util);
    live.util_peer_commit.set(s.commit_util);
}

/// The sampler cadence: the configured period, or 1 s when only the live
/// plane is attached (`sample_period_s == 0` disables the recorder).
fn sample_period_s(world: &World) -> f64 {
    if world.cfg.obs.sample_period_s > 0.0 {
        world.cfg.obs.sample_period_s
    } else {
        1.0
    }
}

/// The series-name prefix of this world's recorder: empty on the serial
/// engine, `ch{c}.` on shard `c` so the merged table keeps every shard's
/// series distinct.
fn sweep_prefix(world: &World) -> String {
    world
        .shard
        .as_ref()
        .map_or_else(String::new, |s| format!("ch{}.", s.shard_id))
}

/// Records a sweep into the recorder's per-window series.
fn record_sweep(rec: &mut MetricsRecorder, s: &GaugeSweep, cut_scale: f64, prefix: &str) {
    rec.sample(&format!("{prefix}queue.pool_prep"), s.pool_prep as f64);
    rec.sample(&format!("{prefix}queue.pool_recv"), s.pool_recv as f64);
    rec.sample(
        &format!("{prefix}queue.peer_endorse"),
        s.peer_endorse as f64,
    );
    rec.sample(&format!("{prefix}queue.peer_vscc"), s.peer_vscc as f64);
    rec.sample(&format!("{prefix}queue.peer_commit"), s.peer_commit as f64);
    rec.sample(&format!("{prefix}queue.osn_cpu"), s.osn_cpu as f64);
    rec.sample(&format!("{prefix}util.peer_vscc"), s.vscc_util);
    rec.sample(&format!("{prefix}util.peer_commit"), s.commit_util);
    rec.sample(&format!("{prefix}inflight.txs"), s.inflight as f64);
    rec.sample(
        &format!("{prefix}blocks.cut_per_tick"),
        s.new_cuts as f64 * cut_scale,
    );
}

/// Closes one health-plane window from a sweep and mirrors the detectors'
/// state into the live plane's gauges (shard 0 only, same rule as
/// [`publish_live`]). No-op when the health plane is off.
fn health_close(world: &mut World, s: &GaugeSweep, t_end_s: f64, width_s: f64) {
    let shard0 = world.shard.as_ref().is_none_or(|sh| sh.shard_id == 0);
    let ObsState { health, live, .. } = &mut world.obs;
    let Some(h) = health.as_mut() else { return };
    h.close_window(&HealthWindow {
        t_end_s,
        width_s,
        busy_s: s.busy_s,
        queue: [
            s.pool_prep as f64,
            s.pool_recv as f64,
            s.peer_endorse as f64,
            s.peer_vscc as f64,
            s.peer_commit as f64,
            s.osn_cpu as f64,
        ],
        servers: s.servers,
        inflight: s.inflight as f64,
    });
    if !shard0 {
        return;
    }
    if let Some(live) = live {
        for (gauge, sev) in live.health_regime.iter().zip(h.severities()) {
            gauge.set(sev as f64);
        }
        live.health_slo_burn.set(h.current_burn());
        for (counter, delta) in live.health_events.iter().zip(h.take_kind_deltas()) {
            counter.add(delta);
        }
    }
}

/// Periodic read-only gauge sweep feeding the [`MetricsRecorder`], the
/// online health plane and the live plane.
fn obs_sample(world: &mut World, k: &mut K) {
    let now = k.now();
    let s = sweep_gauges(world, now);
    publish_live(world, now, &s);
    let prefix = sweep_prefix(world);
    if let Some(rec) = world.obs.recorder.as_mut() {
        record_sweep(rec, &s, 1.0, &prefix);
        rec.end_tick();
    }
    let period = sample_period_s(world);
    health_close(world, &s, now.as_secs_f64(), period);
    let period = SimDuration::from_secs_f64(period);
    k.schedule_in_labeled(period, "obs.sample", obs_sample);
}

/// Flushes the final partial window at the horizon. The sampler only fires
/// on whole periods, so a run whose duration is not an exact multiple of the
/// period used to silently drop the tail; this closes the gap with a
/// width-weighted window for both the recorder and the health plane (whose
/// regime dwells must tile the horizon exactly). The cadence series is
/// scaled by `period / width` so its weighted mean stays in
/// blocks-per-period units. A horizon landing exactly on a tick boundary
/// (modulo fp noise) flushes no tail.
fn flush_partial_tick(world: &mut World, horizon: SimTime) {
    let duration = world.cfg.duration_secs;
    // One sweep serves every surface (the sweep mutates block-cut
    // bookkeeping, so it must run at most once per virtual instant). It also
    // leaves the live gauges at their horizon values.
    let s = sweep_gauges(world, horizon);
    publish_live(world, horizon, &s);
    if let Some(health) = world.obs.health.as_ref() {
        let period = sample_period_s(world);
        let windows = health.windows();
        let width = duration - windows as f64 * period;
        if width > 1e-9 {
            health_close(world, &s, duration, width.min(period));
        }
        if let Some(h) = world.obs.health.as_mut() {
            h.finish(duration);
        }
    }
    let Some(rec) = world.obs.recorder.as_ref() else {
        return;
    };
    let period = world.cfg.obs.sample_period_s;
    let width = duration - rec.ticks() as f64 * period;
    if width <= 1e-9 {
        return;
    }
    let width = width.min(period);
    let prefix = sweep_prefix(world);
    if let Some(rec) = world.obs.recorder.as_mut() {
        record_sweep(rec, &s, period / width, &prefix);
        rec.end_partial_tick(width);
    }
}

fn schedule_faults(faults: &FaultPlan, k: &mut K) {
    for &(peer, at) in &faults.nondeterministic_peers {
        k.schedule_labeled(
            SimTime::from_secs_f64(at),
            "fault",
            move |w: &mut World, _| {
                if let Some(node) = w.peers.get_mut(peer as usize) {
                    for p in &mut node.channels {
                        p.install_chaincode(Box::new(Nondeterministic {
                            inner: KvWrite,
                            taint: peer,
                        }));
                    }
                }
            },
        );
    }
    for &(b, at) in &faults.crash_brokers {
        k.schedule_labeled(
            SimTime::from_secs_f64(at),
            "fault",
            move |w: &mut World, _| {
                if let Some(actor) = w.brokers.get_mut(b as usize) {
                    actor.alive = false;
                }
            },
        );
    }
    for &(o, at) in &faults.crash_osns {
        k.schedule_labeled(
            SimTime::from_secs_f64(at),
            "fault",
            move |w: &mut World, k| {
                let o = o as usize;
                let Some(actor) = w.osns.get_mut(o) else {
                    return;
                };
                actor.alive = false;
                let orphans = std::mem::take(&mut actor.subscribers);
                // Peers reconnect to another OSN and seek from their height.
                let Some(target) = w.osns.iter().position(|a| a.alive) else {
                    return; // no ordering service left (Solo crash)
                };
                for peer_idx in orphans {
                    w.osns[target].subscribers.push(peer_idx);
                    let missing: Vec<Block> = w.osns[target]
                        .delivered
                        .iter()
                        .filter(|blk| {
                            w.channel_index(&blk.channel).is_ok_and(|ch| {
                                blk.header.number >= w.peers[peer_idx].next_expected_block[ch]
                            })
                        })
                        .cloned()
                        .collect();
                    let now = k.now();
                    for b in missing {
                        let bytes = b.wire_size();
                        let arrival = w.osns[target].egress.transfer(now, bytes);
                        k.schedule_labeled(arrival, "peer.block", move |w, k| {
                            peer_receive_block(w, k, peer_idx, b.clone());
                        });
                    }
                }
            },
        );
    }
}

// ---- client pool: arrivals, prep, send ----------------------------------------

fn schedule_next_arrival(world: &mut World, k: &mut K, p: usize) {
    let per_pool_rate = world.cfg.arrival_rate_tps / world.pools.len() as f64;
    let gap = world.pools[p].arrivals.exp(1.0 / per_pool_rate);
    k.schedule_in_labeled(
        SimDuration::from_secs_f64(gap),
        "pool.arrival",
        move |w, k| {
            pool_arrival(w, k, p);
            schedule_next_arrival(w, k, p);
        },
    );
}

fn workload_args(world: &mut World, p: usize, seq: usize) -> (String, Vec<Vec<u8>>) {
    match world.cfg.workload.clone() {
        WorkloadKind::KvPut { payload_bytes } => (
            "kvwrite".into(),
            vec![
                b"put".to_vec(),
                format!("k{p}_{seq}").into_bytes(),
                vec![b'x'; payload_bytes],
            ],
        ),
        WorkloadKind::KvRmw {
            keyspace,
            payload_bytes,
        } => {
            let key = world.pools[p].keys.next_below(keyspace as u64);
            (
                "kvwrite".into(),
                vec![
                    b"rmw".to_vec(),
                    format!("hot{key}").into_bytes(),
                    vec![b'x'; payload_bytes],
                ],
            )
        }
        WorkloadKind::Transfer { accounts } => {
            let from = world.pools[p].keys.next_below(accounts as u64) as u32;
            let mut to = world.pools[p].keys.next_below(accounts as u64) as u32;
            if to == from {
                to = (to + 1) % accounts;
            }
            (
                "asset-transfer".into(),
                vec![
                    b"transfer".to_vec(),
                    AssetTransfer::account_key(from).into_bytes(),
                    AssetTransfer::account_key(to).into_bytes(),
                    b"1".to_vec(),
                ],
            )
        }
        WorkloadKind::Smallbank { customers } => {
            let rng = &mut world.pools[p].keys;
            let a = rng.next_below(customers as u64).to_string().into_bytes();
            let mut b = rng.next_below(customers as u64) as u32;
            let op = rng.next_below(100);
            let args = match op {
                // Blockbench mix: 25 % send_payment, 15 % each of the rest.
                0..=24 => {
                    if b.to_string().as_bytes() == a.as_slice() {
                        b = (b + 1) % customers;
                    }
                    vec![
                        b"send_payment".to_vec(),
                        a,
                        b.to_string().into_bytes(),
                        b"5".to_vec(),
                    ]
                }
                25..=39 => vec![b"transact_savings".to_vec(), a, b"20".to_vec()],
                40..=54 => vec![b"deposit_checking".to_vec(), a, b"20".to_vec()],
                55..=69 => vec![b"write_check".to_vec(), a, b"10".to_vec()],
                70..=84 => vec![b"amalgamate".to_vec(), a],
                _ => vec![b"query".to_vec(), a],
            };
            ("smallbank".into(), args)
        }
    }
}

fn pool_arrival(world: &mut World, k: &mut K, p: usize) {
    let now = k.now();
    let seq = world.traces.len();
    let mut trace = TxTrace::new(now);

    // Overload guard: queue cap on the submission station.
    if world.pools[p].in_prep >= world.cfg.cost.client_queue_cap {
        trace.outcome = TxOutcome::OverloadDropped;
        world.push_trace(trace);
        world.obs.breakdowns.push(TxStationBreakdown::default());
        if let Some(live) = &world.obs.live {
            live.txs_failed_overload.inc();
        }
        if world.obs.sink.enabled() {
            let station = world.pools[p].prep.name().to_string();
            let depth = world.pools[p].in_prep;
            world.emit(
                now,
                format!("arrival{seq}"),
                TracePhase::OverloadDropped,
                station,
                depth,
            );
        }
        return;
    }

    let (chaincode, args) = workload_args(world, p, seq);
    // Round-robin over the *global* channel count: on the sharded engine a
    // pool's home shard still spreads its transactions over every channel,
    // exporting the cross-shard ones at proposal-send time.
    let n_channels = world.total_channels() as u32;
    let deployed = world.cfg.endorsing_peers;
    let gc = (world.pools[p].next_channel % n_channels) as usize;
    let channel = world.global_channel_id(gc);
    let pool = &mut world.pools[p];
    pool.next_channel = pool.next_channel.wrapping_add(1);
    let proposal = pool.sdk.create_proposal(channel, &chaincode, args);
    let tx_id = proposal.tx_id;
    // Only deployed endorsing peers are reachable; a policy naming an
    // undeployed org can then fail at collection, as on a real network.
    let targets: Vec<Principal> = pool
        .selector
        .next_targets()
        .iter()
        .filter(|pr| pr.org.0 >= 1 && pr.org.0 <= deployed)
        .cloned()
        .collect();
    if targets.is_empty() {
        trace.outcome = TxOutcome::EndorsementFailed;
        world.push_trace(trace);
        world.obs.breakdowns.push(TxStationBreakdown::default());
        if let Some(live) = &world.obs.live {
            live.txs_failed_endorsement.inc();
        }
        if world.obs.sink.enabled() {
            let station = world.pools[p].prep.name().to_string();
            world.emit_tx(now, tx_id, TracePhase::EndorsementFailed, station, 0);
        }
        return;
    }
    let expected = targets.len();

    world.push_trace(trace);
    world.obs.breakdowns.push(TxStationBreakdown::default());
    world.tx_index.insert(tx_id, seq);
    world.tx_pool.insert(tx_id, p);
    if let Some(live) = &world.obs.live {
        live.txs_created.inc();
    }
    let collector = EndorsementCollector::new(tx_id, world.policy.clone(), expected);
    world.pools[p].pending.insert(
        tx_id,
        PendingTx {
            proposal,
            collector,
            envelope: None,
            timeout_event: None,
        },
    );

    // Submission-thread service.
    let m = &world.cfg.cost;
    let jitter = world.pools[p]
        .arrivals
        .uniform(-m.client_prep_jitter_ms, m.client_prep_jitter_ms);
    let service = world.ms(m.client_prep_ms + jitter);
    let sdk_pre = world.ms(m.sdk_pre_ms);
    world.pools[p].in_prep += 1;
    let queued = world.pools[p].prep.would_start_at(now) - now;
    let done = world.pools[p].prep.submit(now, service);
    world.attribute(tx_id, StationClass::ClientPrep, queued, service);
    if world.obs.sink.enabled() {
        let station = world.pools[p].prep.name().to_string();
        let depth = world.pools[p].prep.jobs_in_system(now);
        world.emit_tx(now, tx_id, TracePhase::Created, station, depth);
    }
    if world.obs.spans.enabled() {
        let tx = tx_id.short();
        let actor = format!("pool{p}");
        world.emit_span(&tx, SpanKind::ClientPrep, &actor, now, done + sdk_pre, 0, 0);
    }
    if let Some(ctx) = world.shard.as_mut() {
        ctx.pending_sends.push(Reverse(done + sdk_pre));
    }
    k.schedule_labeled(done + sdk_pre, "pool.send", move |w, k| {
        w.pools[p].in_prep -= 1;
        send_proposals(w, k, p, tx_id, targets.clone());
    });
}

fn send_proposals(world: &mut World, k: &mut K, p: usize, tx_id: TxId, targets: Vec<Principal>) {
    let now = k.now();
    if let Some(ctx) = world.shard.as_mut() {
        // Retire this send from the emission-bound heap; `pool.send` events
        // are never cancelled, so pops line up one-to-one with pushes.
        let popped = ctx.pending_sends.pop();
        debug_assert_eq!(popped.map(|r| r.0), Some(now));
    }
    let Some(pending) = world.pools[p].pending.get(&tx_id) else {
        return;
    };
    let proposal = pending.proposal.clone();
    if let Some(t) = world.trace_mut(tx_id) {
        t.proposal_sent = Some(now);
    }
    if world.obs.sink.enabled() {
        let depth = world.pools[p].pending.len();
        world.emit_tx(
            now,
            tx_id,
            TracePhase::ProposalSent,
            format!("pool{p}.nic"),
            depth,
        );
    }
    let bytes = proposal.wire_size();
    if let Some(target) = world.export_target(&proposal.channel) {
        // Cross-shard transaction: fan the proposal out through the home
        // pool's egress link as usual, but hand the resulting arrivals (all
        // at least one link propagation — the lookahead — in the future) to
        // the shard that owns the target channel. That shard runs the rest
        // of the transaction's life; the home copy of the trace becomes a
        // stub that the deterministic merge replaces with the completed one.
        let deliveries: Vec<(usize, SimTime)> = targets
            .iter()
            .map(|principal| {
                (
                    world.peer_of(principal),
                    world.pools[p].egress.transfer(now, bytes),
                )
            })
            .collect();
        let Some(at) = deliveries.iter().map(|d| d.1).min() else {
            return;
        };
        let Some(&seq) = world.tx_index.get(&tx_id) else {
            return;
        };
        world.pools[p].pending.remove(&tx_id);
        let trace = world.traces[seq].clone();
        let breakdown = world.obs.breakdowns[seq].clone();
        let expected = targets.len();
        let Some(ctx) = world.shard.as_mut() else {
            return;
        };
        ctx.exported += 1;
        let src = (ctx.shard_id as u32, seq as u32);
        ctx.outbox.push((
            target,
            at,
            ShardMsg::Proposal {
                src,
                pool: p,
                proposal,
                expected,
                deliveries,
                trace,
                breakdown,
            },
        ));
        return;
    }
    for principal in targets {
        let peer_idx = world.peer_of(&principal);
        let arrival = world.pools[p].egress.transfer(now, bytes);
        let prop = proposal.clone();
        k.schedule_labeled(arrival, "peer.endorse", move |w, k| {
            peer_receive_proposal(w, k, peer_idx, p, prop.clone());
        });
    }
}

impl ShardWorld for World {
    type Msg = ShardMsg;

    fn drain_outbox(&mut self) -> Vec<(usize, SimTime, ShardMsg)> {
        match &mut self.shard {
            Some(s) => std::mem::take(&mut s.outbox),
            None => Vec::new(),
        }
    }

    fn deliver(&mut self, kernel: &mut K, _at: SimTime, msg: ShardMsg) {
        // An imported proposal re-creates exactly the client-side state the
        // local path would have built — a pending entry keyed by tx id, the
        // trace/breakdown slot, and one endorsement arrival per target peer.
        // The trace slot is tagged with its home (shard, seq) identity so the
        // merge can put the completed trace back where the stub lives.
        let ShardMsg::Proposal {
            src,
            pool: p,
            proposal,
            expected,
            deliveries,
            trace,
            breakdown,
        } = msg;
        let tx_id = proposal.tx_id;
        let seq = self.traces.len();
        self.traces.push(trace);
        self.obs.breakdowns.push(breakdown);
        if let Some(s) = &mut self.shard {
            s.trace_src.push(src);
        }
        self.tx_index.insert(tx_id, seq);
        self.tx_pool.insert(tx_id, p);
        let collector = EndorsementCollector::new(tx_id, self.policy.clone(), expected);
        self.pools[p].pending.insert(
            tx_id,
            PendingTx {
                proposal: proposal.clone(),
                collector,
                envelope: None,
                timeout_event: None,
            },
        );
        for (peer_idx, at) in deliveries {
            let prop = proposal.clone();
            kernel.schedule_labeled(at, "peer.endorse", move |w, k| {
                peer_receive_proposal(w, k, peer_idx, p, prop.clone());
            });
        }
    }

    fn emission_bound(&self, next_event: SimTime) -> Option<SimTime> {
        // Cross-shard messages leave this world only inside `pool.send`
        // handlers (see the outbox push in `send_proposals`), and a
        // `pool.send` is always scheduled at least `min_send_delay` after
        // the (home-pool arrival) event that creates it. Incoming proposals
        // only ever schedule endorsement work, which cannot emit — so the
        // bound holds against every future, which is what lets other shards
        // run `bound + lookahead` ahead instead of one link delay.
        let ctx = self.shard.as_ref()?;
        let pending = ctx
            .pending_sends
            .peek()
            .map_or(SimTime::MAX, |Reverse(t)| *t);
        let from_next = if next_event == SimTime::MAX {
            SimTime::MAX
        } else {
            next_event + ctx.min_send_delay
        };
        Some(pending.min(from_next))
    }
}

fn peer_receive_proposal(
    world: &mut World,
    k: &mut K,
    peer_idx: usize,
    p: usize,
    proposal: Proposal,
) {
    let now = k.now();
    let m = &world.cfg.cost;
    let service = world.ms(m.endorse_tx_ms());
    let queued = world.peers[peer_idx].endorse.would_start_at(now) - now;
    let done = world.peers[peer_idx].endorse.submit(now, service);
    // Endorsement fans out: only the slowest endorser is on the critical path.
    world.attribute_max(proposal.tx_id, StationClass::PeerEndorse, queued, service);
    if world.obs.spans.enabled() {
        let tx = proposal.tx_id.short();
        let actor = format!("peer{peer_idx}");
        let parent = span_id(&tx, SpanKind::ClientPrep, &format!("pool{p}"), 0);
        world.emit_span(&tx, SpanKind::Endorse, &actor, now, done, 0, parent);
    }
    k.schedule_labeled(done, "peer.endorse", move |w, k| {
        let Ok(ch) = w.channel_index(&proposal.channel) else {
            return;
        };
        let response = w.peers[peer_idx].channels[ch].endorse(&proposal);
        send_response(w, k, peer_idx, p, response);
    });
}

fn send_response(
    world: &mut World,
    k: &mut K,
    peer_idx: usize,
    p: usize,
    response: ProposalResponse,
) {
    let now = k.now();
    let bytes = response.wire_size();
    let jitter_ms = world.peers[peer_idx]
        .jitter
        .exp(world.cfg.cost.endorse_path_jitter_ms);
    let arrival = world.peers[peer_idx].egress.transfer(now, bytes) + world.ms(jitter_ms);
    k.schedule_labeled(arrival, "pool.recv", move |w, k| {
        pool_receive_response(w, k, p, response.clone());
    });
}

fn pool_receive_response(world: &mut World, k: &mut K, p: usize, response: ProposalResponse) {
    let now = k.now();
    let tx_id = response.tx_id;
    let Some(pending) = world.pools[p].pending.get_mut(&tx_id) else {
        return; // already assembled or failed
    };
    // The response that satisfies the policy is the slowest endorsement the
    // client waited for — the span graph's causal parent of assembly.
    let endorser_peer = response
        .endorsement
        .as_ref()
        .map(|e| (e.endorser.org.0.saturating_sub(1)) as usize);
    match pending.collector.add(response) {
        CollectState::Pending => {}
        CollectState::Failed => {
            world.pools[p].pending.remove(&tx_id);
            if let Some(t) = world.trace_mut(tx_id) {
                t.outcome = TxOutcome::EndorsementFailed;
            }
            if let Some(live) = &world.obs.live {
                live.txs_failed_endorsement.inc();
            }
            if world.obs.sink.enabled() {
                let station = world.pools[p].recv.name().to_string();
                world.emit_tx(now, tx_id, TracePhase::EndorsementFailed, station, 0);
            }
        }
        CollectState::Satisfied => {
            let n = pending.collector.responses().len();
            let m = &world.cfg.cost;
            let cost = world
                .ms(m.client_assemble_base_ms + m.client_assemble_per_endorsement_ms * n as f64);
            let sdk_post = world.ms(m.sdk_post_ms);
            let queued = world.pools[p].recv.would_start_at(now) - now;
            let done = world.pools[p].recv.submit(now, cost);
            world.attribute(tx_id, StationClass::ClientRecv, queued, cost);
            if world.obs.spans.enabled() {
                let tx = tx_id.short();
                let actor = format!("pool{p}");
                let parent = endorser_peer.map_or(0, |e| {
                    span_id(&tx, SpanKind::Endorse, &format!("peer{e}"), 0)
                });
                world.emit_span(
                    &tx,
                    SpanKind::Assemble,
                    &actor,
                    now,
                    done + sdk_post,
                    0,
                    parent,
                );
            }
            k.schedule_labeled(done + sdk_post, "client.assemble", move |w, k| {
                client_assemble(w, k, p, tx_id);
            });
        }
    }
}

fn client_assemble(world: &mut World, k: &mut K, p: usize, tx_id: TxId) {
    let now = k.now();
    let Some((proposal, responses)) = world.pools[p]
        .pending
        .get(&tx_id)
        .map(|pd| (pd.proposal.clone(), pd.collector.responses().to_vec()))
    else {
        return;
    };
    let tx = match world.pools[p].sdk.assemble(&proposal, &responses) {
        Ok(tx) => tx,
        Err(_) => {
            world.pools[p].pending.remove(&tx_id);
            if let Some(t) = world.trace_mut(tx_id) {
                t.outcome = TxOutcome::EndorsementFailed;
            }
            if let Some(live) = &world.obs.live {
                live.txs_failed_endorsement.inc();
            }
            if world.obs.sink.enabled() {
                let station = world.pools[p].recv.name().to_string();
                world.emit_tx(now, tx_id, TracePhase::EndorsementFailed, station, 0);
            }
            return;
        }
    };
    let sigs = tx.endorsements.len();
    if let Some(t) = world.trace_mut(tx_id) {
        t.endorsed = Some(now);
        t.signatures = sigs;
    }
    if world.obs.sink.enabled() {
        let station = world.pools[p].recv.name().to_string();
        let depth = world.pools[p].recv.jobs_in_system(now);
        world.emit_tx(now, tx_id, TracePhase::Endorsed, station, depth);
    }
    submit_to_orderer(world, k, p, tx);
}

fn submit_to_orderer(world: &mut World, k: &mut K, p: usize, tx: Transaction) {
    let now = k.now();
    let tx_id = tx.tx_id;
    if let Some(t) = world.trace_mut(tx_id) {
        t.submitted = Some(now);
    }
    if world.obs.sink.enabled() {
        let depth = world.pools[p].pending.len();
        world.emit_tx(
            now,
            tx_id,
            TracePhase::Submitted,
            format!("pool{p}.nic"),
            depth,
        );
    }
    // Round-robin over OSNs.
    let osn_count = world.osns.len() as u32;
    let o = (world.pools[p].next_osn % osn_count) as usize;
    world.pools[p].next_osn = world.pools[p].next_osn.wrapping_add(1);

    // Arm the 3 s ordering timeout.
    let timeout = world.ms(world.cfg.ordering_timeout_ms as f64);
    let ev = k.schedule_labeled(
        now + timeout,
        "ordering.timeout",
        move |w: &mut World, k| {
            let mut timed_out = false;
            if let Some(t) = w.trace_mut(tx_id) {
                if t.order_acked.is_none() && matches!(t.outcome, TxOutcome::InFlight) {
                    t.outcome = TxOutcome::OrderingTimeout;
                    timed_out = true;
                }
            }
            w.pools[p].pending.remove(&tx_id);
            if timed_out {
                if let Some(live) = &w.obs.live {
                    live.txs_failed_timeout.inc();
                }
            }
            if timed_out && w.obs.sink.enabled() {
                let now = k.now();
                w.emit_tx(
                    now,
                    tx_id,
                    TracePhase::OrderingTimeout,
                    "ordering.timeout".into(),
                    0,
                );
            }
        },
    );
    if let Some(pending) = world.pools[p].pending.get_mut(&tx_id) {
        pending.timeout_event = Some(ev);
        pending.envelope = Some(tx.clone());
    }

    let bytes = tx.wire_size();
    let arrival = world.pools[p].egress.transfer(now, bytes);
    let Ok(ch) = world.channel_index(&tx.channel) else {
        return;
    };
    k.schedule_labeled(arrival, "osn.receive", move |w, k| {
        osn_receive(w, k, o, ch, OsnInput::Broadcast(tx.clone()), true);
    });
}

// ---- ordering service ----------------------------------------------------------

/// Routes any input through the OSN's CPU station, then applies effects to
/// the per-channel ordering instance `ch`.
fn osn_receive(
    world: &mut World,
    k: &mut K,
    o: usize,
    ch: usize,
    input: OsnInput,
    charge_admission: bool,
) {
    if !world.osns[o].alive {
        return;
    }
    let now = k.now();
    let m = &world.cfg.cost;
    let per_tx = match world.cfg.orderer_type {
        OrdererType::Solo => m.solo_order_ms,
        OrdererType::Kafka => m.kafka_broker_op_ms,
        OrdererType::Raft => m.raft_op_ms,
    };
    let cost = if charge_admission {
        m.osn_admission_ms + per_tx
    } else {
        per_tx * 0.5
    };
    let service = world.ms(cost);
    // Client broadcasts carry a tx identity to attribute CPU time against;
    // intra-cluster traffic (Raft/Kafka relays, ticks) does not.
    let attributed_tx = match &input {
        OsnInput::Broadcast(tx) if charge_admission => Some(tx.tx_id),
        _ => None,
    };
    let queued = world.osns[o].station.would_start_at(now) - now;
    let done = world.osns[o].station.submit(now, service);
    if let Some(tx_id) = attributed_tx {
        world.attribute(tx_id, StationClass::OsnCpu, queued, service);
        if world.obs.spans.enabled() {
            let tx = tx_id.short();
            let actor = format!("osn{o}");
            let parent = world.tx_pool.get(&tx_id).map_or(0, |&p| {
                span_id(&tx, SpanKind::Assemble, &format!("pool{p}"), 0)
            });
            world.emit_span(&tx, SpanKind::OsnBroadcast, &actor, now, done, 0, parent);
        }
    }
    k.schedule_labeled(done, "osn.receive", move |w, k| {
        if !w.osns[o].alive {
            return;
        }
        let effects = w.osns[o].nodes[ch].handle(input.clone());
        apply_osn_effects(w, k, o, ch, effects);
    });
}

fn osn_tick(world: &mut World, k: &mut K, o: usize) {
    if world.osns[o].alive {
        for ch in 0..world.channel_ids.len() {
            let effects = world.osns[o].nodes[ch].handle(OsnInput::Tick);
            apply_osn_effects(world, k, o, ch, effects);
        }
    }
    let period = world.ms(world.cfg.cost.osn_tick_ms);
    k.schedule_in_labeled(period, "osn.tick", move |w, k| osn_tick(w, k, o));
}

fn apply_osn_effects(world: &mut World, k: &mut K, o: usize, ch: usize, effects: Vec<OsnEffect>) {
    let now = k.now();
    for effect in effects {
        match effect {
            OsnEffect::Ack { tx_id } => {
                let Some(&p) = world.tx_pool.get(&tx_id) else {
                    continue;
                };
                let arrival = world.osns[o].egress.transfer(now, 200);
                k.schedule_labeled(arrival, "osn.ack", move |w: &mut World, k2| {
                    let now = k2.now();
                    if let Some(pending) = w.pools[p].pending.remove(&tx_id) {
                        if let Some(ev) = pending.timeout_event {
                            k2.cancel(ev);
                        }
                    }
                    let mut first_ack = false;
                    if let Some(t) = w.trace_mut(tx_id) {
                        if t.order_acked.is_none() {
                            t.order_acked = Some(now);
                            first_ack = true;
                        }
                    }
                    if first_ack && w.obs.sink.enabled() {
                        let station = w.osns[o].station.name().to_string();
                        let depth = w.osns[o].station.jobs_in_system(now);
                        w.emit_tx(now, tx_id, TracePhase::OrderAcked, station, depth);
                    }
                });
            }
            OsnEffect::SendOsn { to, message } => {
                let bytes = osn_msg_bytes(&message);
                let arrival = world.osns[o].egress.transfer(now, bytes);
                let from = o as u32;
                if world.obs.spans.enabled() {
                    let trace = format!("ch{}", world.global_ch(ch));
                    let actor = format!("osn{o}>osn{to}");
                    world.emit_msg_span(&trace, SpanKind::RaftMsg, &actor, now, arrival);
                }
                k.schedule_labeled(arrival, "osn.relay", move |w, k| {
                    osn_receive(
                        w,
                        k,
                        to as usize,
                        ch,
                        OsnInput::Osn {
                            from,
                            message: message.clone(),
                        },
                        false,
                    );
                });
            }
            OsnEffect::SendBroker { to, message } => {
                let bytes = broker_msg_bytes(&message);
                let arrival = world.osns[o].egress.transfer(now, bytes);
                if world.obs.spans.enabled() {
                    let trace = format!("ch{}", world.global_ch(ch));
                    let actor = format!("osn{o}>broker{to}");
                    world.emit_msg_span(&trace, SpanKind::KafkaProduce, &actor, now, arrival);
                }
                k.schedule_labeled(arrival, "broker.produce", move |w, k| {
                    broker_receive(w, k, to as usize, ch, message.clone());
                });
            }
            OsnEffect::ArmBatchTimer { after_ms, seq } => {
                let delay = world.ms(after_ms as f64);
                k.schedule_in_labeled(delay, "osn.timer", move |w, k| {
                    osn_receive(w, k, o, ch, OsnInput::BatchTimer { seq }, false);
                });
            }
            OsnEffect::BlockReady(block) => {
                deliver_block(world, k, o, block);
            }
        }
    }
}

fn osn_msg_bytes(message: &OsnMsg) -> u64 {
    match message {
        OsnMsg::Relay(tx) => tx.wire_size(),
        OsnMsg::Raft(m) => match m {
            fabricsim_raft::Message::AppendEntries { entries, .. } => {
                200 + entries.iter().map(|e| e.data.len() as u64).sum::<u64>()
            }
            _ => 150,
        },
    }
}

fn broker_msg_bytes(message: &BrokerMsg) -> u64 {
    match message {
        BrokerMsg::Produce { record, .. } => 150 + record.data.len() as u64,
        BrokerMsg::FetchResponse { records, .. } => {
            150 + records.iter().map(|r| r.data.len() as u64).sum::<u64>()
        }
        _ => 150,
    }
}

fn deliver_block(world: &mut World, k: &mut K, o: usize, block: Block) {
    let now = k.now();
    let Ok(ch) = world.channel_index(&block.channel) else {
        return;
    };
    // Record the cut and per-tx ordering timestamps once (Kafka/Raft OSNs all
    // emit the same blocks; the first emission wins).
    if block.header.number >= world.next_cut_number[ch] {
        world.next_cut_number[ch] = block.header.number + 1;
        world.block_cuts.push((now, block.len()));
        if let Some(live) = &world.obs.live {
            live.blocks_cut.inc();
            live.block_txs.add(block.len() as u64);
        }
        let station = world
            .obs
            .sink
            .enabled()
            .then(|| world.osns[o].station.name().to_string());
        let depth = world.osns[o].station.jobs_in_system(now);
        for tx in &block.transactions {
            let tx_id = tx.tx_id;
            if let Some(t) = world.trace_mut(tx_id) {
                if t.ordered.is_none() {
                    t.ordered = Some(now);
                }
            }
        }
        if let Some(station) = station {
            let tx_ids: Vec<TxId> = block.transactions.iter().map(|t| t.tx_id).collect();
            for tx_id in tx_ids {
                world.emit_tx(now, tx_id, TracePhase::Ordered, station.clone(), depth);
            }
        }
        if world.obs.spans.enabled() {
            // Zero-width anchor: the instant the block exists as an artifact.
            let trace = block_trace(world.global_ch(ch), block.header.number);
            let actor = format!("osn{o}");
            world.emit_span(&trace, SpanKind::BlockCut, &actor, now, now, 0, 0);
        }
    }
    let bytes = block.wire_size();
    let subscribers = world.osns[o].subscribers.clone();
    let btrace = world
        .obs
        .spans
        .enabled()
        .then(|| block_trace(world.global_ch(ch), block.header.number));
    for peer_idx in subscribers {
        let arrival = world.osns[o].egress.transfer(now, bytes);
        if let Some(trace) = &btrace {
            let parent = span_id(trace, SpanKind::BlockCut, &format!("osn{o}"), 0);
            let actor = format!("peer{peer_idx}");
            world.emit_span(trace, SpanKind::Deliver, &actor, now, arrival, 0, parent);
        }
        let b = block.clone();
        k.schedule_labeled(arrival, "osn.deliver", move |w, k| {
            peer_receive_block(w, k, peer_idx, b.clone());
        });
    }
    world.osns[o].delivered.push(block);
}

// ---- validate phase ---------------------------------------------------------------

/// Entry point for blocks arriving from the ordering service (or from a
/// failover replay). Routes through the gossip layer when enabled.
fn peer_receive_block(world: &mut World, k: &mut K, peer_idx: usize, block: Block) {
    if let Some(gossip) = world.peers[peer_idx].gossip.as_mut() {
        let effects = gossip.on_block_from_orderer(block);
        apply_gossip_effects(world, k, peer_idx, effects);
    } else {
        enqueue_block_validation(world, k, peer_idx, block);
    }
}

fn gossip_msg_bytes(message: &GossipMsg) -> u64 {
    match message {
        GossipMsg::Push { block, .. } => block.wire_size(),
        GossipMsg::PullRequest { .. } => 60,
        GossipMsg::PullResponse { blocks } => {
            100 + blocks.iter().map(|b| b.wire_size()).sum::<u64>()
        }
    }
}

fn apply_gossip_effects(world: &mut World, k: &mut K, peer_idx: usize, effects: Vec<GossipEffect>) {
    for effect in effects {
        match effect {
            GossipEffect::Send { to, message } => {
                let now = k.now();
                let bytes = gossip_msg_bytes(&message);
                let arrival = world.peers[peer_idx].egress.transfer(now, bytes);
                let from = peer_idx as u32;
                if world.obs.spans.enabled() {
                    if let GossipMsg::Push { block, hop } = &message {
                        // One span per mesh hop: actor is the *receiving*
                        // peer, parent the hop (or orderer delivery) that
                        // brought the block to the sender.
                        if let Ok(ch) = world.channel_index(&block.channel) {
                            let trace = block_trace(world.global_ch(ch), block.header.number);
                            let actor = format!("peer{to}");
                            let sender = format!("peer{peer_idx}");
                            let parent = if *hop > 1 {
                                span_id(&trace, SpanKind::GossipHop, &sender, hop - 1)
                            } else {
                                span_id(&trace, SpanKind::Deliver, &sender, 0)
                            };
                            world.emit_span(
                                &trace,
                                SpanKind::GossipHop,
                                &actor,
                                now,
                                arrival,
                                *hop,
                                parent,
                            );
                        }
                    }
                }
                k.schedule_labeled(arrival, "gossip.send", move |w, k| {
                    peer_receive_gossip(w, k, to as usize, from, message.clone());
                });
            }
            GossipEffect::Deliver(block) => {
                enqueue_block_validation(world, k, peer_idx, block);
            }
        }
    }
}

fn peer_receive_gossip(
    world: &mut World,
    k: &mut K,
    peer_idx: usize,
    from: u32,
    message: GossipMsg,
) {
    let Some(gossip) = world.peers[peer_idx].gossip.as_mut() else {
        return;
    };
    let effects = gossip.step(from, message);
    apply_gossip_effects(world, k, peer_idx, effects);
}

fn gossip_tick(world: &mut World, k: &mut K, peer_idx: usize) {
    // Peers carry a gossip layer only when cfg.gossip is Some; requiring
    // both here removes the unwrap without changing when the tick re-arms.
    let Some(gossip_cfg) = world.cfg.gossip else {
        return;
    };
    if let Some(gossip) = world.peers[peer_idx].gossip.as_mut() {
        let effects = gossip.tick();
        apply_gossip_effects(world, k, peer_idx, effects);
        let period = world.ms(gossip_cfg.anti_entropy_ms as f64);
        k.schedule_in_labeled(period, "gossip.tick", move |w, k| {
            gossip_tick(w, k, peer_idx)
        });
    }
}

fn enqueue_block_validation(world: &mut World, k: &mut K, peer_idx: usize, block: Block) {
    let now = k.now();
    let Ok(ch) = world.channel_index(&block.channel) else {
        return;
    };
    // Drop duplicate deliveries (failover replay overlapping in-flight blocks).
    if block.header.number < world.peers[peer_idx].next_expected_block[ch] {
        return;
    }
    debug_assert_eq!(
        block.header.number, world.peers[peer_idx].next_expected_block[ch],
        "delivery gap at peer {peer_idx}"
    );
    world.peers[peer_idx].next_expected_block[ch] = block.header.number + 1;
    if world.obs.spans.enabled() {
        // Zero-width delivery anchor for gossip-fed peers (no orderer
        // Deliver span). Orderer subscribers already have a real one with
        // the same deterministic id — the analyzer dedups, keeping the
        // earlier real span.
        let trace = block_trace(world.global_ch(ch), block.header.number);
        let actor = format!("peer{peer_idx}");
        world.emit_span(&trace, SpanKind::Deliver, &actor, now, now, 0, 0);
    }
    let is_observer = peer_idx == world.observer;
    if is_observer {
        let station = world
            .obs
            .sink
            .enabled()
            .then(|| world.peers[peer_idx].vscc.name().to_string());
        let depth = world.peers[peer_idx].vscc.jobs_in_system(now);
        for tx_id in block
            .transactions
            .iter()
            .map(|t| t.tx_id)
            .collect::<Vec<_>>()
        {
            if let Some(t) = world.trace_mut(tx_id) {
                t.delivered = Some(now);
            }
            if let Some(station) = &station {
                world.emit_tx(now, tx_id, TracePhase::Delivered, station.clone(), depth);
            }
        }
    }
    let m = &world.cfg.cost;
    let pool = m.validator_pool_size.max(1);
    // Per-transaction stage costs (progressive within the block).
    let vscc_tx_ms: Vec<f64> = block
        .transactions
        .iter()
        .map(|tx| m.vscc_tx_ms(tx.endorsements.len().max(1)))
        .collect();
    let commit_tx_ms = m.commit_tx_ms();
    let overhead_ms = m.validate_block_overhead_ms;
    // Blocks are serviced in delivery order and VSCC cannot overtake an
    // earlier block's commit, so the serial commit station is the queueing
    // backbone of the staged pipeline: the block's VSCC stage begins when a
    // committer slot frees up, and the commit stage follows immediately.
    let start = world.peers[peer_idx].commit.would_start_at(now);
    type StageTimes = (SimDuration, SimDuration, Vec<SimTime>, Vec<SimTime>);
    let (vscc_service, commit_service, commit_times, vscc_times): StageTimes = if pool <= 1 {
        // Serial stock-Fabric path. Timing reproduces the single-station
        // model exactly: the block's total service is one f64 sum, and the
        // split point is carved out by *integer* subtraction so
        // vscc_service + commit_service == total_service bit-for-bit.
        let per_tx_ms: Vec<f64> = block
            .transactions
            .iter()
            .map(|tx| m.validate_tx_ms(tx.endorsements.len().max(1)))
            .collect();
        let total_ms: f64 = overhead_ms + per_tx_ms.iter().sum::<f64>();
        let total_service = world.ms(total_ms);
        let vscc_service = world.ms(vscc_tx_ms.iter().sum::<f64>()).min(total_service);
        let commit_service = total_service - vscc_service;
        // Each tx's VSCC check runs at the head of its own serial slice, so
        // its vscc-done instant sits inside the slice, clamped to never land
        // after the commit record it precedes.
        let mut acc = overhead_ms;
        let mut commit_times = Vec::with_capacity(per_tx_ms.len());
        let mut vscc_times = Vec::with_capacity(per_tx_ms.len());
        for (c, &v) in per_tx_ms.iter().zip(&vscc_tx_ms) {
            let committed = start + SimDuration::from_millis_f64(acc + c);
            vscc_times.push((start + SimDuration::from_millis_f64(acc + v)).min(committed));
            acc += c;
            commit_times.push(committed);
        }
        (vscc_service, commit_service, commit_times, vscc_times)
    } else {
        // Pooled path: the VSCC stage's makespan is a deterministic
        // earliest-free-worker schedule of the per-tx costs over `pool`
        // workers; MVCC + ledger write stay serial behind it. The stage is a
        // barrier, so every tx's vscc-done instant is the stage end.
        let vscc_service = world.ms(crate::model::CostModel::vscc_makespan_ms(&vscc_tx_ms, pool));
        let commit_service = world.ms(overhead_ms + commit_tx_ms * block.transactions.len() as f64);
        let vscc_end = start + vscc_service;
        let commit_times = {
            let mut acc = overhead_ms;
            (0..block.transactions.len())
                .map(|_| {
                    acc += commit_tx_ms;
                    vscc_end + SimDuration::from_millis_f64(acc)
                })
                .collect()
        };
        let vscc_times = vec![vscc_end; block.transactions.len()];
        (vscc_service, commit_service, commit_times, vscc_times)
    };
    // Observational per-tx VSCC visits: the station's busy time is the pool's
    // real CPU demand, so its utilization reads as aggregate core usage.
    let vscc_services: Vec<SimDuration> = vscc_tx_ms.iter().map(|&ms| world.ms(ms)).collect();
    for s in vscc_services {
        world.peers[peer_idx].vscc.submit_ready(now, start, s);
    }
    let vscc_end = start + vscc_service;
    let done = world.peers[peer_idx]
        .commit
        .submit_ready(now, vscc_end, commit_service);
    debug_assert_eq!(done, vscc_end + commit_service);
    if is_observer {
        // Attribute each stage per tx: block-level queueing lands on the VSCC
        // stage (it is what the block waits to enter); the commit stage then
        // runs back-to-back, charged this tx's serial share plus its slice of
        // the block overhead.
        let queued = start - now;
        let overhead_share_ms = overhead_ms / block.transactions.len().max(1) as f64;
        let tx_service: Vec<(TxId, SimDuration, SimDuration)> = block
            .transactions
            .iter()
            .zip(&vscc_tx_ms)
            .map(|(tx, &vscc_ms)| {
                (
                    tx.tx_id,
                    SimDuration::from_millis_f64(vscc_ms),
                    SimDuration::from_millis_f64(commit_tx_ms + overhead_share_ms),
                )
            })
            .collect();
        for (tx_id, vscc_s, commit_s) in tx_service {
            world.attribute(tx_id, StationClass::PeerVscc, queued, vscc_s);
            world.attribute(tx_id, StationClass::PeerCommit, SimDuration::ZERO, commit_s);
        }
    }

    k.schedule_labeled(done, "validate.commit", move |w, k| {
        commit_block(
            w,
            k,
            peer_idx,
            block.clone(),
            start,
            vscc_times.clone(),
            commit_times.clone(),
        );
    });
}

fn commit_block(
    world: &mut World,
    k: &mut K,
    peer_idx: usize,
    block: Block,
    start: SimTime,
    vscc_times: Vec<SimTime>,
    commit_times: Vec<SimTime>,
) {
    let _ = k;
    let Ok(ch) = world.channel_index(&block.channel) else {
        return;
    };
    let number = block.header.number;
    let tx_ids: Vec<TxId> = block.transactions.iter().map(|t| t.tx_id).collect();
    let is_observer = peer_idx == world.observer;
    if is_observer && world.obs.spans.enabled() {
        // Per-tx validation spans bridge the tx-scoped graph back onto the
        // block-scoped delivery chain via the Vscc parent edge. Emitted here
        // — at commit time, not when validation was enqueued — so the span
        // graph only ever contains finished work and every Commit span has a
        // matching TxTrace commit stamp.
        let trace_b = block_trace(world.global_ch(ch), number);
        let actor = format!("peer{peer_idx}");
        let deliver_parent = span_id(&trace_b, SpanKind::Deliver, &actor, 0);
        for (i, tx_id) in tx_ids.iter().enumerate() {
            let tx_s = tx_id.short();
            world.emit_span(
                &tx_s,
                SpanKind::Vscc,
                &actor,
                start,
                vscc_times[i],
                0,
                deliver_parent,
            );
            let vscc_parent = span_id(&tx_s, SpanKind::Vscc, &actor, 0);
            world.emit_span(
                &tx_s,
                SpanKind::Commit,
                &actor,
                vscc_times[i],
                commit_times[i],
                0,
                vscc_parent,
            );
        }
    }
    let stats = world.peers[peer_idx].channels[ch]
        .validate_and_commit(block)
        // lint:allow(no-unwrap-in-lib) -- ordering delivers blocks in order; a chain break is
        // a simulator bug
        .expect("delivered blocks must chain");
    let _ = stats;
    if is_observer {
        let flags = {
            let ledger = world.peers[peer_idx].channels[ch].ledger();
            let height = ledger.height();
            ledger
                .blocks()
                .by_number(height - 1)
                // lint:allow(no-unwrap-in-lib) -- reads back the block committed two above
                // statements
                .expect("just committed")
                .metadata
                .flags
                .clone()
        };
        let vscc_station = world
            .obs
            .sink
            .enabled()
            .then(|| world.peers[peer_idx].vscc.name().to_string());
        let commit_station = world
            .obs
            .sink
            .enabled()
            .then(|| world.peers[peer_idx].commit.name().to_string());
        for (i, tx_id) in tx_ids.iter().enumerate() {
            let mut e2e = None;
            if let Some(t) = world.trace_mut(*tx_id) {
                t.committed = Some(commit_times[i]);
                if matches!(t.outcome, TxOutcome::InFlight) {
                    t.outcome = TxOutcome::Committed(flags[i]);
                    e2e = Some((commit_times[i] - t.created).as_secs_f64());
                }
            }
            if let Some(e2e_s) = e2e {
                world.obs.e2e_hist.record(e2e_s);
                if let Some(h) = world.obs.health.as_mut() {
                    h.observe_completion(e2e_s);
                }
                if let Some(live) = &world.obs.live {
                    live.e2e_latency.observe(e2e_s);
                    if flags[i] == ValidationCode::Valid {
                        live.txs_committed_valid.inc();
                    } else {
                        live.txs_committed_invalid.inc();
                    }
                }
                if let Some(&idx) = world.tx_index.get(tx_id) {
                    if let Some(b) = world.obs.breakdowns.get_mut(idx) {
                        b.commit_s = commit_times[i].as_secs_f64();
                        b.end_to_end_s = e2e_s;
                    }
                }
            }
            if let Some(station) = &vscc_station {
                world.emit_tx(
                    vscc_times[i],
                    *tx_id,
                    TracePhase::VsccDone,
                    station.clone(),
                    0,
                );
            }
            if let Some(station) = &commit_station {
                world.emit_tx(
                    commit_times[i],
                    *tx_id,
                    TracePhase::Committed,
                    station.clone(),
                    0,
                );
            }
        }
    }
}

// ---- kafka substrate ----------------------------------------------------------------

fn broker_receive(world: &mut World, k: &mut K, b: usize, ch: usize, message: BrokerMsg) {
    if !world.brokers[b].alive {
        return;
    }
    let now = k.now();
    let service = world.ms(world.cfg.cost.kafka_broker_op_ms);
    let done = world.brokers[b].station.submit(now, service);
    k.schedule_labeled(done, "broker.step", move |w, k| {
        if !w.brokers[b].alive {
            return;
        }
        let effects = w.brokers[b].partitions[ch].step(message.clone());
        apply_broker_effects(w, k, b, ch, effects);
    });
}

fn broker_tick(world: &mut World, k: &mut K, b: usize) {
    if world.brokers[b].alive {
        for ch in 0..world.channel_ids.len() {
            let effects = world.brokers[b].partitions[ch].tick();
            apply_broker_effects(world, k, b, ch, effects);
        }
    }
    let period = world.ms(world.cfg.cost.broker_tick_ms);
    k.schedule_in_labeled(period, "broker.tick", move |w, k| broker_tick(w, k, b));
}

fn broker_heartbeat(world: &mut World, k: &mut K, b: usize) {
    if world.brokers[b].alive {
        if let Some(first) = world.brokers[b].partitions.first() {
            let id = first.id();
            for ch in 0..world.channel_ids.len() {
                zk_receive(world, k, ch, ZkMsg::Heartbeat { from: id });
            }
        }
    }
    let period = world.ms(world.cfg.cost.zk_heartbeat_ms);
    k.schedule_in_labeled(period, "broker.heartbeat", move |w, k| {
        broker_heartbeat(w, k, b);
    });
}

fn apply_broker_effects(
    world: &mut World,
    k: &mut K,
    b: usize,
    ch: usize,
    effects: Vec<BrokerEffect>,
) {
    let now = k.now();
    for effect in effects {
        match effect {
            BrokerEffect::Send { to, message } => {
                let bytes = broker_msg_bytes(&message);
                let arrival = world.brokers[b].egress.transfer(now, bytes);
                k.schedule_labeled(arrival, "broker.send", move |w, k| {
                    broker_receive(w, k, to as usize, ch, message.clone());
                });
            }
            BrokerEffect::Reply { to, event } => {
                let bytes = client_event_bytes(&event);
                let arrival = world.brokers[b].egress.transfer(now, bytes);
                let o = to as usize;
                if world.obs.spans.enabled() {
                    if let ClientEvent::ConsumeBatch { .. } = &event {
                        let trace = format!("ch{}", world.global_ch(ch));
                        let actor = format!("broker{b}>osn{o}");
                        world.emit_msg_span(&trace, SpanKind::KafkaConsume, &actor, now, arrival);
                    }
                }
                k.schedule_labeled(arrival, "osn.consume", move |w, k| {
                    osn_receive(w, k, o, ch, OsnInput::Kafka(event.clone()), false);
                });
            }
            BrokerEffect::IsrUpdate { isr } => {
                let from = world.brokers[b].partitions[ch].id();
                zk_receive(world, k, ch, ZkMsg::IsrUpdate { from, isr });
            }
        }
    }
}

fn client_event_bytes(event: &ClientEvent) -> u64 {
    match event {
        ClientEvent::ConsumeBatch { records, .. } => {
            150 + records.iter().map(|r| r.data.len() as u64).sum::<u64>()
        }
        _ => 150,
    }
}

fn zk_receive(world: &mut World, k: &mut K, ch: usize, message: ZkMsg) {
    let Some(zk) = world.zks.get_mut(ch) else {
        return;
    };
    let effects = zk.step(message);
    apply_zk_effects(world, k, ch, effects);
}

fn zk_tick(world: &mut World, k: &mut K) {
    for ch in 0..world.zks.len() {
        let effects = world.zks[ch].tick();
        apply_zk_effects(world, k, ch, effects);
    }
    k.schedule_in_labeled(world.ms(500.0), "zk.tick", zk_tick);
}

fn apply_zk_effects(world: &mut World, k: &mut K, ch: usize, effects: Vec<ZkEffect>) {
    for effect in effects {
        // Kafka clients learn leadership through metadata refresh; model it as
        // a prompt notification to every OSN when ZooKeeper appoints a leader.
        if let ZkEffect::AppointLeader { broker, .. } = &effect {
            let leader = *broker;
            for o in 0..world.osns.len() {
                let delay = world.ms(world.cfg.cost.link_propagation_ms + 1.0);
                k.schedule_in_labeled(delay, "osn.metadata", move |w, k| {
                    osn_receive(w, k, o, ch, OsnInput::KafkaMetadata { leader }, false);
                });
            }
        }
        let (target, message) = match effect {
            ZkEffect::AppointLeader {
                broker,
                epoch,
                replicas,
            } => (broker, BrokerMsg::AppointLeader { epoch, replicas }),
            ZkEffect::AppointFollower {
                broker,
                leader,
                epoch,
            } => (broker, BrokerMsg::AppointFollower { epoch, leader }),
        };
        // Coordination messages travel the same LAN.
        let delay = world.ms(world.cfg.cost.link_propagation_ms + 0.5);
        k.schedule_in_labeled(delay, "broker.appoint", move |w, k| {
            broker_receive(w, k, target as usize, ch, message.clone());
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::PolicySpec;

    fn quick_cfg(orderer: OrdererType) -> SimConfig {
        SimConfig {
            orderer_type: orderer,
            endorsing_peers: 3,
            policy: PolicySpec::OrN(3),
            arrival_rate_tps: 60.0,
            duration_secs: 12.0,
            warmup_secs: 3.0,
            cooldown_secs: 2.0,
            ..SimConfig::default()
        }
    }

    #[test]
    fn solo_end_to_end_commits() {
        let r = Simulation::new(quick_cfg(OrdererType::Solo)).run_detailed();
        assert!(r.chain_ok, "observer chain must verify");
        assert!(r.observer_height > 0);
        let tput = r.summary.committed_tps();
        assert!(
            (50.0..70.0).contains(&tput),
            "solo committed {tput} tps at 60 offered"
        );
        assert_eq!(r.summary.endorsement_failures, 0);
        assert_eq!(r.summary.committed_invalid, 0);
    }

    #[test]
    fn raft_end_to_end_commits() {
        let r = Simulation::new(quick_cfg(OrdererType::Raft)).run_detailed();
        assert!(r.chain_ok);
        let tput = r.summary.committed_tps();
        assert!((50.0..70.0).contains(&tput), "raft committed {tput} tps");
    }

    #[test]
    fn kafka_end_to_end_commits() {
        let r = Simulation::new(quick_cfg(OrdererType::Kafka)).run_detailed();
        assert!(r.chain_ok);
        let tput = r.summary.committed_tps();
        assert!((50.0..70.0).contains(&tput), "kafka committed {tput} tps");
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let a = Simulation::new(quick_cfg(OrdererType::Solo)).run();
        let b = Simulation::new(quick_cfg(OrdererType::Solo)).run();
        assert_eq!(a.committed_valid, b.committed_valid);
        assert_eq!(a.blocks_cut, b.blocks_cut);
        assert!((a.validate.latency.mean_s - b.validate.latency.mean_s).abs() < 1e-12);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = quick_cfg(OrdererType::Solo);
        let a = Simulation::new(cfg.clone()).run();
        cfg.seed = 43;
        let b = Simulation::new(cfg).run();
        assert_ne!(a.committed_valid, b.committed_valid);
    }

    #[test]
    fn overload_saturates_at_validate_capacity() {
        let mut cfg = quick_cfg(OrdererType::Solo);
        cfg.endorsing_peers = 10;
        cfg.policy = PolicySpec::OrN(10);
        cfg.arrival_rate_tps = 400.0;
        cfg.duration_secs = 25.0;
        cfg.warmup_secs = 8.0;
        let r = Simulation::new(cfg).run();
        let tput = r.committed_tps();
        assert!(
            (270.0..330.0).contains(&tput),
            "expected validate-phase saturation ~300, got {tput}"
        );
        // Past the knee the validate queue grows without bound: latency
        // blows up (the paper's Fig. 3 "increase rapidly" regime).
        assert!(
            r.validate.latency.mean_s > 1.0,
            "order+validate latency should blow up past saturation, got {}s",
            r.validate.latency.mean_s
        );
    }

    #[test]
    fn and_policy_caps_lower_than_or() {
        let mut cfg = quick_cfg(OrdererType::Solo);
        cfg.endorsing_peers = 10;
        cfg.arrival_rate_tps = 400.0;
        cfg.duration_secs = 25.0;
        cfg.warmup_secs = 8.0;
        cfg.policy = PolicySpec::OrN(10);
        let or = Simulation::new(cfg.clone()).run().committed_tps();
        cfg.policy = PolicySpec::AndX(5);
        let and5 = Simulation::new(cfg).run().committed_tps();
        assert!(
            and5 < or - 50.0,
            "AND5 ({and5}) must cap well below OR ({or})"
        );
        assert!((180.0..230.0).contains(&and5), "AND5 cap {and5}");
    }

    #[test]
    fn mvcc_conflicts_appear_under_contention() {
        let mut cfg = quick_cfg(OrdererType::Solo);
        cfg.workload = WorkloadKind::KvRmw {
            keyspace: 4,
            payload_bytes: 1,
        };
        cfg.arrival_rate_tps = 100.0;
        let r = Simulation::new(cfg).run();
        assert!(
            r.committed_invalid > 0,
            "hot-key read-modify-write must produce MVCC conflicts"
        );
        assert!(r.committed_valid > 0);
    }

    #[test]
    fn broker_crash_fails_over() {
        let mut cfg = quick_cfg(OrdererType::Kafka);
        cfg.duration_secs = 30.0;
        cfg.warmup_secs = 18.0; // measure after the fault + failover
        let faults = FaultPlan {
            crash_brokers: vec![(0, 8.0)],
            crash_osns: vec![],
            ..FaultPlan::default()
        };
        let r = Simulation::new(cfg).with_faults(faults).run_detailed();
        assert!(r.chain_ok);
        assert!(
            r.summary.committed_tps() > 40.0,
            "kafka must keep ordering after leader broker crash: {} tps",
            r.summary.committed_tps()
        );
    }

    #[test]
    fn unknown_channel_is_a_typed_error() {
        let cfg = quick_cfg(OrdererType::Solo);
        let world = build_world(&cfg, None, None);
        assert!(world.channel_index(&ChannelId::default_channel()).is_ok());
        let err = world
            .channel_index(&ChannelId("no-such-channel".into()))
            .unwrap_err();
        assert_eq!(err.to_string(), "unknown channel `no-such-channel`");
    }

    #[test]
    fn sharded_single_channel_commits() {
        let mut cfg = quick_cfg(OrdererType::Solo);
        cfg.sim_workers = 1;
        let r = Simulation::new(cfg).run_detailed();
        assert!(
            r.chain_ok,
            "observer chain must verify on the sharded engine"
        );
        assert!(r.observer_height > 0);
        let tput = r.summary.committed_tps();
        assert!(
            (50.0..70.0).contains(&tput),
            "sharded solo committed {tput} tps at 60 offered"
        );
    }

    #[test]
    fn window_aligned_run_records_no_zero_width_tail() {
        // 12.0 s duration with a 1.0 s sampler window: the run ends exactly
        // on a window boundary, so there must be no partial tail tick — not
        // a zero-width one — and the CSV/JSON must not carry a tail marker.
        let cfg = quick_cfg(OrdererType::Solo);
        assert_eq!(cfg.obs.sample_period_s, 1.0);
        let r = Simulation::new(cfg).run_detailed();
        let m = r
            .observability
            .metrics
            .expect("sampler attached by default");
        assert_eq!(m.ticks(), 12, "one tick per whole window");
        assert_eq!(m.tail_width_s(), None, "no tail on an aligned horizon");
        let json = m.to_json();
        assert!(
            !json.contains("tail_width_s"),
            "aligned run leaked a tail marker: {json}"
        );
        let csv = m.to_csv();
        assert_eq!(csv.lines().count(), 13, "header + 12 rows:\n{csv}");
        let last = csv.lines().last().expect("rows");
        assert!(
            last.starts_with("11.000,"),
            "last row at the final whole window's start: {last}"
        );
        // A misaligned horizon DOES record its shorter tail window.
        let mut cfg = quick_cfg(OrdererType::Solo);
        cfg.duration_secs = 12.25;
        let r = Simulation::new(cfg).run_detailed();
        let m = r.observability.metrics.expect("sampler attached");
        assert_eq!(m.ticks(), 13);
        assert_eq!(m.tail_width_s(), Some(0.25));
        assert!(m.to_json().contains("\"tail_width_s\":0.25"));
    }

    #[test]
    fn sharded_multi_channel_worker_count_invariance() {
        let mut cfg = quick_cfg(OrdererType::Solo);
        cfg.channels = 4;
        cfg.endorsing_peers = 4;
        cfg.policy = PolicySpec::OrN(4);
        cfg.sim_workers = 1;
        let a = Simulation::new(cfg.clone()).run_detailed();
        cfg.sim_workers = 4;
        let b = Simulation::new(cfg).run_detailed();
        assert!(a.chain_ok && b.chain_ok);
        assert!(
            a.summary.committed_valid > 0,
            "multi-channel run must commit"
        );
        assert_eq!(a.summary.to_json(), b.summary.to_json());
        assert_eq!(a.final_state, b.final_state);
        assert_eq!(a.block_cuts, b.block_cuts);
        assert_eq!(a.traces.len(), b.traces.len());
    }
}
