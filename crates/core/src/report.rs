//! Text tables and CSV output for experiment results.

use std::fmt::Write as _;

use crate::metrics::SummaryReport;

/// One labelled row of an experiment (e.g. a sweep point).
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (e.g. `"Solo/OR λ=150"`).
    pub label: String,
    /// The run's summary.
    pub summary: SummaryReport,
}

/// Renders rows as a fixed-width text table with per-phase columns.
pub fn phase_table(title: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "{:<26} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "run",
        "offered",
        "exec_tps",
        "order_tps",
        "valid_tps",
        "exec_lat",
        "o&v_lat",
        "overall",
        "timeout",
        "blk_t"
    );
    for r in rows {
        let s = &r.summary;
        let _ = writeln!(
            out,
            "{:<26} {:>8.0} {:>9.1} {:>9.1} {:>9.1} {:>8.3}s {:>8.3}s {:>7.3}s {:>8} {:>7.2}s",
            r.label,
            s.offered_tps,
            s.execute.throughput_tps,
            s.order.throughput_tps,
            s.validate.throughput_tps,
            s.execute.latency.mean_s,
            s.validate.latency.mean_s,
            s.overall_latency.mean_s,
            s.ordering_timeouts,
            s.mean_block_time_s,
        );
    }
    out
}

/// Renders rows as CSV (one line per row, with a header).
///
/// Each latency phase (`execute`, `order`, `order_validate`, `overall`) gets
/// the full mean/p50/p95/p99 quartet so decomposition plots don't need a
/// re-run, and the trailing `seed`/`config_digest` columns tie every row back
/// to the exact run that produced it.
pub fn to_csv(rows: &[Row]) -> String {
    let mut out = String::from(
        "label,offered_tps,execute_tps,order_tps,validate_tps,execute_lat_mean_s,execute_lat_p50_s,execute_lat_p95_s,execute_lat_p99_s,order_lat_mean_s,order_lat_p50_s,order_lat_p95_s,order_lat_p99_s,order_validate_lat_mean_s,order_validate_lat_p50_s,order_validate_lat_p95_s,order_validate_lat_p99_s,overall_lat_mean_s,overall_lat_p50_s,overall_lat_p95_s,overall_lat_p99_s,created,committed_valid,committed_invalid,overload_dropped,ordering_timeouts,ordering_timeouts_per_s,overload_dropped_per_s,endorsement_failures,mean_block_time_s,mean_block_size,blocks_cut,seed,config_digest\n",
    );
    for r in rows {
        let s = &r.summary;
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            escape_csv(&r.label),
            s.offered_tps,
            s.execute.throughput_tps,
            s.order.throughput_tps,
            s.validate.throughput_tps,
            s.execute.latency.mean_s,
            s.execute.latency.p50_s,
            s.execute.latency.p95_s,
            s.execute.latency.p99_s,
            s.order.latency.mean_s,
            s.order.latency.p50_s,
            s.order.latency.p95_s,
            s.order.latency.p99_s,
            s.validate.latency.mean_s,
            s.validate.latency.p50_s,
            s.validate.latency.p95_s,
            s.validate.latency.p99_s,
            s.overall_latency.mean_s,
            s.overall_latency.p50_s,
            s.overall_latency.p95_s,
            s.overall_latency.p99_s,
            s.created,
            s.committed_valid,
            s.committed_invalid,
            s.overload_dropped,
            s.ordering_timeouts,
            s.ordering_timeouts_per_s,
            s.overload_dropped_per_s,
            s.endorsement_failures,
            s.mean_block_time_s,
            s.mean_block_size,
            s.blocks_cut,
            s.seed,
            escape_csv(&s.config_digest),
        );
    }
    out
}

/// Renders raw per-transaction traces as CSV (one line per transaction), for
/// external plotting or post-hoc analysis of a single run.
pub fn traces_to_csv(traces: &[crate::metrics::TxTrace]) -> String {
    use crate::metrics::TxOutcome;
    let mut out = String::from(
        "created_s,proposal_sent_s,endorsed_s,submitted_s,order_acked_s,ordered_s,delivered_s,committed_s,outcome,signatures\n",
    );
    let fmt = |t: Option<fabricsim_des::SimTime>| {
        t.map_or(String::new(), |x| format!("{:.6}", x.as_secs_f64()))
    };
    for t in traces {
        let outcome = match t.outcome {
            TxOutcome::InFlight => "IN_FLIGHT".to_string(),
            TxOutcome::OverloadDropped => "OVERLOAD_DROPPED".to_string(),
            TxOutcome::EndorsementFailed => "ENDORSEMENT_FAILED".to_string(),
            TxOutcome::OrderingTimeout => "ORDERING_TIMEOUT".to_string(),
            TxOutcome::Committed(code) => code.label().to_string(),
        };
        let _ = writeln!(
            out,
            "{:.6},{},{},{},{},{},{},{},{},{}",
            t.created.as_secs_f64(),
            fmt(t.proposal_sent),
            fmt(t.endorsed),
            fmt(t.submitted),
            fmt(t.order_acked),
            fmt(t.ordered),
            fmt(t.delivered),
            fmt(t.committed),
            outcome,
            t.signatures,
        );
    }
    out
}

fn escape_csv(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Hand-rolled JSON summary of one run: provenance (`seed`,
/// `config_digest`), per-phase throughput/latency, outcome counts, failure
/// rates, the end-to-end latency histogram and the bottleneck attribution
/// report. One object, printed on a single line — the document behind
/// `fabricsim --json`, and one of the artifact families `fabricsim diff`
/// compares.
pub fn run_summary_json(label: &str, result: &crate::sim::RunResult) -> String {
    let s = &result.summary;
    let h = &result.observability.e2e_hist;
    let (hot_name, hot_load) = result.utilization.hottest();
    let hist = if h.is_empty() {
        "null".to_string()
    } else {
        format!(
            "{{\"count\":{},\"mean_s\":{:.6},\"p50_s\":{:.6},\"p95_s\":{:.6},\"p99_s\":{:.6},\"max_s\":{:.6}}}",
            h.count(),
            h.mean(),
            h.quantile(0.50),
            h.quantile(0.95),
            h.quantile(0.99),
            h.quantile(1.0),
        )
    };
    format!(
        concat!(
            "{{\"label\":\"{label}\",",
            "\"seed\":{seed},\"config_digest\":\"{digest}\",",
            "\"offered_tps\":{offered:.3},",
            "\"execute_tps\":{exec_tps:.3},\"order_tps\":{order_tps:.3},\"validate_tps\":{valid_tps:.3},",
            "\"execute_latency_mean_s\":{exec_lat:.6},",
            "\"order_validate_latency_mean_s\":{ov_lat:.6},",
            "\"overall_latency\":{{\"mean_s\":{o_mean:.6},\"p50_s\":{o_p50:.6},\"p95_s\":{o_p95:.6},\"p99_s\":{o_p99:.6},\"max_s\":{o_max:.6}}},",
            "\"created\":{created},\"committed_valid\":{valid},\"committed_invalid\":{invalid},",
            "\"overload_dropped\":{dropped},\"ordering_timeouts\":{timeouts},",
            "\"endorsement_failures\":{endo_fail},",
            "\"dropped_events\":{dropped_events},\"dropped_spans\":{dropped_spans},",
            "\"ordering_timeouts_per_s\":{timeout_rate:.6},\"overload_dropped_per_s\":{drop_rate:.6},",
            "\"blocks_cut\":{blocks},\"mean_block_time_s\":{blk_t:.6},\"mean_block_size\":{blk_n:.3},",
            "\"hottest_station\":\"{hot}\",\"hottest_utilization\":{hot_load:.6},",
            "\"e2e_histogram\":{hist},",
            "\"bottleneck\":{bottleneck}}}"
        ),
        label = json_escape(label),
        seed = s.seed,
        digest = json_escape(&s.config_digest),
        offered = s.offered_tps,
        exec_tps = s.execute.throughput_tps,
        order_tps = s.order.throughput_tps,
        valid_tps = s.validate.throughput_tps,
        exec_lat = s.execute.latency.mean_s,
        ov_lat = s.validate.latency.mean_s,
        o_mean = s.overall_latency.mean_s,
        o_p50 = s.overall_latency.p50_s,
        o_p95 = s.overall_latency.p95_s,
        o_p99 = s.overall_latency.p99_s,
        o_max = s.overall_latency.max_s,
        created = s.created,
        valid = s.committed_valid,
        invalid = s.committed_invalid,
        dropped = s.overload_dropped,
        timeouts = s.ordering_timeouts,
        endo_fail = s.endorsement_failures,
        dropped_events = result.observability.dropped_events,
        dropped_spans = result.observability.dropped_spans,
        timeout_rate = s.ordering_timeouts_per_s,
        drop_rate = s.overload_dropped_per_s,
        blocks = s.blocks_cut,
        blk_t = s.mean_block_time_s,
        blk_n = s.mean_block_size,
        hot = json_escape(hot_name),
        hot_load = hot_load,
        hist = hist,
        bottleneck = result.observability.bottleneck.to_json(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{LatencyStats, PhaseReport};

    fn dummy(label: &str) -> Row {
        Row {
            label: label.into(),
            summary: SummaryReport {
                offered_tps: 100.0,
                window_secs: 10.0,
                execute: PhaseReport {
                    throughput_tps: 99.0,
                    latency: LatencyStats {
                        count: 1,
                        mean_s: 0.25,
                        p50_s: 0.25,
                        p95_s: 0.3,
                        p99_s: 0.35,
                        max_s: 0.4,
                    },
                },
                order: PhaseReport::default(),
                validate: PhaseReport::default(),
                overall_latency: LatencyStats::default(),
                created: 1000,
                committed_valid: 990,
                committed_invalid: 0,
                overload_dropped: 0,
                ordering_timeouts: 10,
                ordering_timeouts_per_s: 1.0,
                overload_dropped_per_s: 0.0,
                endorsement_failures: 0,
                mean_block_time_s: 1.0,
                mean_block_size: 99.0,
                blocks_cut: 10,
                seed: 42,
                config_digest: "deadbeefdeadbeef".into(),
            },
        }
    }

    #[test]
    fn table_contains_rows_and_title() {
        let t = phase_table("Fig 2", &[dummy("Solo/OR λ=100")]);
        assert!(t.contains("== Fig 2 =="));
        assert!(t.contains("Solo/OR λ=100"));
        assert!(t.contains("99.0"));
    }

    #[test]
    fn csv_has_header_and_data() {
        let csv = to_csv(&[dummy("a"), dummy("b")]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("label,offered_tps"));
        assert!(lines[1].starts_with("a,100"));
        // Header and data rows have the same number of columns.
        let cols = lines[0].split(',').count();
        assert_eq!(lines[1].split(',').count(), cols);
        // Per-phase percentile columns and provenance are present.
        for col in [
            "execute_lat_p50_s",
            "order_lat_p99_s",
            "order_validate_lat_p50_s",
            "overall_lat_p99_s",
            "seed",
            "config_digest",
        ] {
            assert!(lines[0].split(',').any(|c| c == col), "missing {col}");
        }
        assert!(lines[1].ends_with("42,deadbeefdeadbeef"));
    }

    #[test]
    fn traces_csv_has_one_row_per_tx() {
        use crate::metrics::{TxOutcome, TxTrace};
        use fabricsim_des::SimTime;
        let mut a = TxTrace::new(SimTime::from_secs_f64(1.0));
        a.endorsed = Some(SimTime::from_secs_f64(1.25));
        a.outcome = TxOutcome::Committed(fabricsim_types::ValidationCode::Valid);
        a.signatures = 3;
        let mut b = TxTrace::new(SimTime::from_secs_f64(2.0));
        b.outcome = TxOutcome::OverloadDropped;
        let csv = traces_to_csv(&[a, b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("1.000000,,1.250000"));
        assert!(lines[1].ends_with("VALID,3"));
        assert!(lines[2].contains("OVERLOAD_DROPPED"));
    }

    #[test]
    fn csv_escapes_commas() {
        assert_eq!(escape_csv("a,b"), "\"a,b\"");
        assert_eq!(escape_csv("plain"), "plain");
        assert_eq!(escape_csv("q\"q"), "\"q\"\"q\"");
    }
}
