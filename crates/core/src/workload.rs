//! Simulation configuration and workload definitions.

use fabricsim_policy::Policy;
use fabricsim_types::{BatchConfig, OrdererType};

use crate::model::CostModel;

/// Which endorsement policy the channel uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicySpec {
    /// `OR('Org1.peer', …, 'OrgN.peer')` — any one of the first `n` orgs.
    OrN(u32),
    /// `AND('Org1.peer', …, 'OrgX.peer')` — all of the first `x` orgs.
    /// As in the paper's Table II, `x` is clamped to the number of deployed
    /// endorsing peers.
    AndX(u32),
    /// `OutOf(k, 'Org1.peer', …, 'OrgN.peer')`.
    KOfN(usize, u32),
    /// Any policy in textual form.
    Custom(String),
}

impl PolicySpec {
    /// Resolves the spec against `deployed` endorsing peers into a concrete
    /// [`Policy`].
    ///
    /// # Panics
    /// Panics if a custom policy fails to parse or `deployed == 0`.
    pub fn resolve(&self, deployed: u32) -> Policy {
        assert!(deployed > 0, "need at least one endorsing peer");
        match self {
            PolicySpec::OrN(n) => Policy::or_of_orgs((*n).min(deployed)),
            PolicySpec::AndX(x) => Policy::and_of_orgs((*x).min(deployed)),
            PolicySpec::KOfN(k, n) => {
                let n = (*n).min(deployed);
                Policy::k_of_n_orgs((*k).min(n as usize), n)
            }
            // lint:allow(no-unwrap-in-lib) -- workload construction fail-fast on a malformed
            // policy string
            PolicySpec::Custom(text) => text.parse().expect("invalid custom policy"),
        }
    }

    /// Short label for reports (`OR10`, `AND5`, …).
    pub fn label(&self) -> String {
        match self {
            PolicySpec::OrN(n) => format!("OR{n}"),
            PolicySpec::AndX(x) => format!("AND{x}"),
            PolicySpec::KOfN(k, n) => format!("OutOf{k}of{n}"),
            PolicySpec::Custom(_) => "custom".to_string(),
        }
    }
}

/// The transaction mix the workload generator drives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Blind `put` writes of `payload_bytes` to per-transaction unique keys —
    /// the paper's benchmark workload ("transaction size of 1 byte"),
    /// conflict-free.
    KvPut {
        /// Value size in bytes.
        payload_bytes: usize,
    },
    /// Read-modify-write over a bounded keyspace: genuine MVCC conflicts
    /// under contention.
    KvRmw {
        /// Number of distinct keys; smaller ⇒ more conflicts.
        keyspace: usize,
        /// Value size in bytes.
        payload_bytes: usize,
    },
    /// Money transfers between accounts (the `asset-transfer` chaincode).
    Transfer {
        /// Number of accounts seeded at genesis.
        accounts: u32,
    },
    /// The Smallbank banking benchmark (Blockbench's standard workload): six
    /// operation types over savings/checking account pairs, with the
    /// benchmark's canonical mix (25 % payments, 15 % each of the rest).
    Smallbank {
        /// Number of customers seeded at genesis.
        customers: u32,
    },
}

impl Default for WorkloadKind {
    fn default() -> Self {
        WorkloadKind::KvPut { payload_bytes: 1 }
    }
}

/// Gossip-based block dissemination configuration (when `Some`, only a few
/// leader peers subscribe to the ordering service for block delivery; all
/// other peers receive blocks over the gossip mesh, as in production Fabric).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipConfig {
    /// How many peers connect to the ordering service directly.
    pub leader_peers: u32,
    /// Push fanout per novel block.
    pub fanout: usize,
    /// Anti-entropy pull period, milliseconds.
    pub anti_entropy_ms: u64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            leader_peers: 2,
            fanout: 3,
            anti_entropy_ms: 500,
        }
    }
}

/// Observability configuration: what the run records beyond the summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsConfig {
    /// Record structured per-transaction phase events (exportable as JSONL).
    /// Off by default: large runs emit one event per phase transition.
    pub trace_events: bool,
    /// Record causal span-graph events (per-peer endorsement, consensus
    /// message legs, per-hop gossip delivery, per-peer validation/commit).
    /// Off by default for the same reason as `trace_events`.
    pub span_events: bool,
    /// Deterministic head-sampling rate in `[0, 1]` applied to *tx-scoped*
    /// trace and span records (seeded on the tx id, so rates nest: every tx
    /// kept at 1 % is also kept at 50 %). Block-scoped spans are always
    /// recorded. `1.0` keeps everything.
    pub trace_sample: f64,
    /// Capacity of the bounded in-memory event/span rings; oldest records
    /// are evicted beyond this and reported as `dropped_events` /
    /// `dropped_spans`. Must be positive.
    pub trace_buffer_cap: usize,
    /// Enable the DES kernel self-profiler: host-ns attribution of the
    /// event loop per event-family label, plus heap and loop overhead.
    /// Write-only with respect to the simulation.
    pub profile: bool,
    /// Time-series sampling period in virtual seconds (queue depths,
    /// utilization, in-flight transactions, block-cut cadence). Set to `0.0`
    /// to disable the sampler entirely.
    pub sample_period_s: f64,
    /// Enable the online health plane: streaming per-station regime
    /// detection, bottleneck-shift onsets and SLO burn tracking over the
    /// sampler's windows. Write-only with respect to the simulation.
    pub health_events: bool,
    /// End-to-end p99 latency objective the health plane's SLO burn tracker
    /// measures against, in seconds. Must be positive and finite.
    pub slo_p99_s: f64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            trace_events: false,
            span_events: false,
            trace_sample: 1.0,
            trace_buffer_cap: 1 << 20,
            profile: false,
            sample_period_s: 1.0,
            health_events: false,
            slo_p99_s: 2.0,
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Root RNG seed; equal seeds give bit-identical runs.
    pub seed: u64,
    /// Consensus backing the ordering service.
    pub orderer_type: OrdererType,
    /// Number of endorsing peers (one org each; one client pool each).
    pub endorsing_peers: u32,
    /// Number of additional validate-only peers (≥1; the first is the
    /// measurement observer, as in the paper's Fig. 1 third phase).
    pub committing_peers: u32,
    /// Endorsement policy.
    pub policy: PolicySpec,
    /// Ordering-service nodes (ignored for Solo, which always has 1).
    pub osn_count: u32,
    /// Kafka brokers (Kafka mode).
    pub broker_count: u32,
    /// ZooKeeper ensemble size (Kafka mode).
    pub zk_count: u32,
    /// Open-loop Poisson arrival rate, transactions per second.
    pub arrival_rate_tps: f64,
    /// Total virtual duration, seconds.
    pub duration_secs: f64,
    /// Measurement window start (warm-up excluded), seconds.
    pub warmup_secs: f64,
    /// Tail excluded from the measurement window, seconds.
    pub cooldown_secs: f64,
    /// Block cutting parameters (paper defaults: 100 txs / 1 s).
    pub batch: BatchConfig,
    /// Client-side ordering timeout, ms (paper: 3 000).
    pub ordering_timeout_ms: u64,
    /// The workload mix.
    pub workload: WorkloadKind,
    /// Number of channels (independent ledgers/partitions; paper §II). Client
    /// load is spread round-robin across channels; peers host one ledger per
    /// channel on shared hardware; each channel gets its own consensus
    /// instance (its own Raft group / Kafka partition), exactly as in Fabric.
    pub channels: u32,
    /// Event-loop workers for the sharded DES kernel. `0` (the default) runs
    /// the classic single-threaded kernel; `N ≥ 1` shards the world per
    /// channel and runs the shards on up to `N` OS threads under a
    /// conservative lookahead barrier. Any positive worker count produces
    /// byte-identical reports (the determinism suite locks workers
    /// {1, 2, 4, 8} against each other), so this knob trades wall clock only.
    pub sim_workers: u32,
    /// Block dissemination: `None` = every peer subscribes to an OSN directly;
    /// `Some` = leader peers + gossip mesh.
    pub gossip: Option<GossipConfig>,
    /// The calibrated cost model.
    pub cost: CostModel,
    /// Observability: event tracing and time-series sampling.
    pub obs: ObsConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 42,
            orderer_type: OrdererType::Solo,
            endorsing_peers: 10,
            committing_peers: 1,
            policy: PolicySpec::OrN(10),
            osn_count: 3,
            broker_count: 3,
            zk_count: 3,
            arrival_rate_tps: 100.0,
            duration_secs: 60.0,
            warmup_secs: 10.0,
            cooldown_secs: 5.0,
            batch: BatchConfig::default(),
            ordering_timeout_ms: 3_000,
            workload: WorkloadKind::default(),
            channels: 1,
            sim_workers: 0,
            gossip: None,
            cost: CostModel::default(),
            obs: ObsConfig::default(),
        }
    }
}

impl SimConfig {
    /// Validates cross-field consistency.
    ///
    /// # Errors
    /// A description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.endorsing_peers == 0 {
            return Err("need at least one endorsing peer".into());
        }
        if self.committing_peers == 0 {
            return Err("need at least one committing (observer) peer".into());
        }
        if self.arrival_rate_tps <= 0.0 {
            return Err("arrival rate must be positive".into());
        }
        if self.duration_secs <= self.warmup_secs + self.cooldown_secs {
            return Err("duration must exceed warmup + cooldown".into());
        }
        if self.orderer_type != OrdererType::Solo && self.osn_count == 0 {
            return Err("need at least one OSN".into());
        }
        if self.orderer_type == OrdererType::Kafka && (self.broker_count == 0 || self.zk_count == 0)
        {
            return Err("kafka mode needs brokers and a zookeeper ensemble".into());
        }
        if let Some(g) = &self.gossip {
            if g.leader_peers == 0 || g.fanout == 0 || g.anti_entropy_ms == 0 {
                return Err("gossip needs leader peers, fanout and a pull period".into());
            }
            if self.channels > 1 {
                return Err("gossip delivery currently supports a single channel".into());
            }
        }
        if self.channels == 0 || self.channels > 32 {
            return Err("channels must be in 1..=32".into());
        }
        if self.sim_workers > 64 {
            return Err("sim_workers must be in 0..=64 (0 = classic serial kernel)".into());
        }
        if self.sim_workers > 0 {
            if self.gossip.is_some() {
                return Err("the sharded kernel does not support gossip delivery yet".into());
            }
            if self.cost.link_propagation_ms <= 0.0 || !self.cost.link_propagation_ms.is_finite() {
                return Err(
                    "the sharded kernel derives its lookahead from link_propagation_ms, \
                     which must be positive and finite"
                        .into(),
                );
            }
        }
        if !self.obs.sample_period_s.is_finite() || self.obs.sample_period_s < 0.0 {
            return Err("metrics sample period must be a finite non-negative number".into());
        }
        if !self.obs.trace_sample.is_finite()
            || self.obs.trace_sample < 0.0
            || self.obs.trace_sample > 1.0
        {
            return Err("trace sample rate must be a finite number in [0, 1]".into());
        }
        if self.obs.trace_buffer_cap == 0 {
            return Err("trace buffer capacity must be positive".into());
        }
        if !self.obs.slo_p99_s.is_finite() || self.obs.slo_p99_s <= 0.0 {
            return Err("SLO p99 latency objective must be a finite positive number".into());
        }
        self.batch.validate()
    }

    /// A short stable fingerprint of everything that shapes the run's
    /// *results*: SHA-256 over the canonical `Debug` rendering of the
    /// config with the observability block normalized away (tracing and
    /// sampling never perturb the simulation, so two runs that differ only
    /// there are the same experiment). 16 hex chars — enough to compare
    /// artifacts, short enough for a CSV column.
    ///
    /// The digest identifies a config *within one build* of the simulator;
    /// it is not stable across field additions (any new cost-model knob
    /// deliberately changes it).
    pub fn digest(&self) -> String {
        let canonical = SimConfig {
            obs: ObsConfig {
                trace_events: false,
                span_events: false,
                trace_sample: 0.0,
                trace_buffer_cap: 0,
                profile: false,
                sample_period_s: 0.0,
                health_events: false,
                slo_p99_s: 0.0,
            },
            // Every positive worker count yields byte-identical results
            // (locked by the determinism suite), so the digest only
            // distinguishes the serial engine (0) from the sharded one (≥1).
            sim_workers: self.sim_workers.min(1),
            ..self.clone()
        };
        let hash = fabricsim_crypto::sha256(format!("{canonical:?}").as_bytes());
        hash.to_hex()[..16].to_string()
    }

    /// The effective number of OSNs (Solo always runs exactly one).
    pub fn effective_osns(&self) -> u32 {
        if self.orderer_type == OrdererType::Solo {
            1
        } else {
            self.osn_count
        }
    }

    /// Signatures per transaction under the resolved policy (what VSCC pays).
    pub fn signatures_per_tx(&self) -> usize {
        self.policy.resolve(self.endorsing_peers).min_endorsements()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_spec_resolution_clamps_to_deployment() {
        assert_eq!(PolicySpec::OrN(10).resolve(3), Policy::or_of_orgs(3));
        assert_eq!(PolicySpec::AndX(5).resolve(3), Policy::and_of_orgs(3));
        assert_eq!(PolicySpec::AndX(5).resolve(10), Policy::and_of_orgs(5));
        assert_eq!(PolicySpec::KOfN(2, 5).resolve(3), Policy::k_of_n_orgs(2, 3));
    }

    #[test]
    fn policy_labels() {
        assert_eq!(PolicySpec::OrN(10).label(), "OR10");
        assert_eq!(PolicySpec::AndX(5).label(), "AND5");
        assert_eq!(PolicySpec::KOfN(2, 5).label(), "OutOf2of5");
    }

    #[test]
    fn custom_policy_parses() {
        let spec = PolicySpec::Custom("AND('Org1.peer','Org2.peer')".into());
        assert_eq!(spec.resolve(5), Policy::and_of_orgs(2));
    }

    #[test]
    fn default_config_is_valid() {
        assert_eq!(SimConfig::default().validate(), Ok(()));
    }

    #[test]
    fn validation_catches_problems() {
        let c = SimConfig {
            endorsing_peers: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SimConfig {
            duration_secs: 5.0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SimConfig {
            orderer_type: OrdererType::Kafka,
            broker_count: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn signatures_per_tx_follows_policy() {
        let mut c = SimConfig {
            policy: PolicySpec::OrN(10),
            ..SimConfig::default()
        };
        assert_eq!(c.signatures_per_tx(), 1);
        c.policy = PolicySpec::AndX(5);
        assert_eq!(c.signatures_per_tx(), 5);
        c.endorsing_peers = 3;
        assert_eq!(c.signatures_per_tx(), 3, "AND5 with 3 deployed = AND3");
    }

    #[test]
    fn digest_tracks_experiment_identity_not_observability() {
        let base = SimConfig::default();
        let d = base.digest();
        assert_eq!(d.len(), 16);
        assert!(d.chars().all(|c| c.is_ascii_hexdigit()));
        // Deterministic, and insensitive to observability toggles…
        let mut traced = base.clone();
        traced.obs.trace_events = true;
        traced.obs.span_events = true;
        traced.obs.trace_sample = 0.01;
        traced.obs.trace_buffer_cap = 64;
        traced.obs.profile = true;
        traced.obs.sample_period_s = 0.25;
        traced.obs.health_events = true;
        traced.obs.slo_p99_s = 0.75;
        assert_eq!(traced.digest(), d);
        // …but sensitive to anything that shapes results.
        for cfg in [
            SimConfig {
                seed: 43,
                ..base.clone()
            },
            SimConfig {
                arrival_rate_tps: 101.0,
                ..base.clone()
            },
            SimConfig {
                policy: PolicySpec::AndX(5),
                ..base.clone()
            },
        ] {
            assert_ne!(cfg.digest(), d, "{cfg:?}");
        }
        let mut pooled = base.clone();
        pooled.cost.validator_pool_size = 4;
        assert_ne!(pooled.digest(), d);
    }

    #[test]
    fn solo_always_one_osn() {
        let mut c = SimConfig {
            osn_count: 5,
            ..SimConfig::default()
        };
        assert_eq!(c.effective_osns(), 1);
        c.orderer_type = OrdererType::Raft;
        assert_eq!(c.effective_osns(), 5);
    }
}
