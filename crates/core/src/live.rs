//! The live observability plane: wall-clock-side metrics the simulation
//! updates as it advances.
//!
//! A [`LiveMetrics`] bundle holds atomic counters, gauges and a log-bucketed
//! latency histogram registered in a [`MetricsRegistry`]; the simulation
//! bumps them at its existing phase-transition sites and a
//! [`fabricsim_obs::MetricsServer`] serves the registry as Prometheus text
//! exposition format while the run is still in progress.
//!
//! Determinism contract: the plane is strictly **write-only** from the
//! simulation's perspective. Nothing in the event loop ever reads a live
//! value back, so attaching a bundle (or scraping it concurrently) cannot
//! change a run's outcome; with no bundle attached the per-site cost is one
//! branch on an `Option`. Like the other observability toggles, the plane is
//! masked out of [`crate::SimConfig::digest`]'s provenance hash.

use std::sync::{Arc, OnceLock};

use fabricsim_obs::{
    Counter, Gauge, HealthEventKind, LiveHistogram, MetricsRegistry, HEALTH_STATIONS,
    HEALTH_STATION_COUNT,
};

/// The simulator's live metric handles, all registered in one registry.
///
/// Metric names follow Prometheus conventions (`_total` counters, base-unit
/// `_seconds` histograms). Every handle is cheap to clone and safe to bump
/// from the simulation thread while an exporter renders concurrently.
#[derive(Debug)]
pub struct LiveMetrics {
    registry: MetricsRegistry,
    /// Transactions admitted by a client pool.
    pub txs_created: Counter,
    /// Transactions committed with `ValidationCode::Valid`.
    pub txs_committed_valid: Counter,
    /// Transactions committed but flagged invalid (MVCC conflict, policy…).
    pub txs_committed_invalid: Counter,
    /// Arrivals dropped at a saturated client submission queue.
    pub txs_failed_overload: Counter,
    /// Endorsement-collection failures.
    pub txs_failed_endorsement: Counter,
    /// Client-side ordering timeouts.
    pub txs_failed_timeout: Counter,
    /// Blocks cut by the ordering service (first delivery wins).
    pub blocks_cut: Counter,
    /// Transactions carried by those blocks.
    pub block_txs: Counter,
    /// Simulation runs started in this process.
    pub runs_started: Counter,
    /// Simulation runs completed in this process.
    pub runs_completed: Counter,
    /// End-to-end latency of committed transactions (virtual seconds).
    pub e2e_latency: LiveHistogram,
    /// Current virtual time of the in-progress run.
    pub sim_time: Gauge,
    /// Transactions in flight (created, not yet terminal).
    pub inflight: Gauge,
    /// Summed queue depth of the client-pool prep stations.
    pub q_pool_prep: Gauge,
    /// Summed queue depth of the client-pool receive stations.
    pub q_pool_recv: Gauge,
    /// Summed queue depth of the peer endorsement stations.
    pub q_peer_endorse: Gauge,
    /// Summed queue depth of the peer VSCC stations.
    pub q_peer_vscc: Gauge,
    /// Summed queue depth of the peer commit stations.
    pub q_peer_commit: Gauge,
    /// Summed queue depth of the OSN CPU stations.
    pub q_osn_cpu: Gauge,
    /// Max per-peer VSCC-station utilization so far.
    pub util_peer_vscc: Gauge,
    /// Max per-peer commit-station utilization so far.
    pub util_peer_commit: Gauge,
    /// Current regime severity per health-plane station class (0 stable,
    /// 1 saturating, 2 overloaded), indexed like
    /// [`fabricsim_obs::HEALTH_STATIONS`]. Driven by the online health plane
    /// when [`crate::ObsConfig::health_events`] is set.
    pub health_regime: [Gauge; HEALTH_STATION_COUNT],
    /// Most recent window's SLO burn rate (violating fraction over a 1%
    /// error budget; 1.0 burns the budget exactly at its rate).
    pub health_slo_burn: Gauge,
    /// Health events emitted, by kind, indexed like
    /// [`fabricsim_obs::HealthEventKind::ALL`].
    pub health_events: [Counter; 4],
}

impl LiveMetrics {
    /// Registers a fresh bundle in its own registry.
    pub fn new() -> Arc<LiveMetrics> {
        LiveMetrics::register(MetricsRegistry::new())
    }

    /// Registers the simulator's metric families in `registry`. Also installs
    /// the peer-pipeline and ordering-cutter hooks (process-global; the first
    /// registry to install them wins).
    pub fn register(registry: MetricsRegistry) -> Arc<LiveMetrics> {
        let committed = "Transactions committed at the observer peer, by validity.";
        let failed = "Transactions that terminated without committing, by reason.";
        let queue = "Summed jobs in system over the station class.";
        let util = "Max per-station utilization of the class so far this run.";
        let m = LiveMetrics {
            txs_created: registry.counter(
                "fabricsim_txs_created_total",
                "Transactions admitted by a client pool.",
                &[],
            ),
            txs_committed_valid: registry.counter(
                "fabricsim_txs_committed_total",
                committed,
                &[("validity", "valid")],
            ),
            txs_committed_invalid: registry.counter(
                "fabricsim_txs_committed_total",
                committed,
                &[("validity", "invalid")],
            ),
            txs_failed_overload: registry.counter(
                "fabricsim_txs_failed_total",
                failed,
                &[("reason", "overload")],
            ),
            txs_failed_endorsement: registry.counter(
                "fabricsim_txs_failed_total",
                failed,
                &[("reason", "endorsement")],
            ),
            txs_failed_timeout: registry.counter(
                "fabricsim_txs_failed_total",
                failed,
                &[("reason", "ordering_timeout")],
            ),
            blocks_cut: registry.counter(
                "fabricsim_blocks_cut_total",
                "Blocks cut by the ordering service.",
                &[],
            ),
            block_txs: registry.counter(
                "fabricsim_block_txs_total",
                "Transactions carried by cut blocks.",
                &[],
            ),
            runs_started: registry.counter(
                "fabricsim_runs_started_total",
                "Simulation runs started.",
                &[],
            ),
            runs_completed: registry.counter(
                "fabricsim_runs_completed_total",
                "Simulation runs completed.",
                &[],
            ),
            e2e_latency: registry.histogram(
                "fabricsim_e2e_latency_seconds",
                "End-to-end latency of committed transactions (virtual time).",
                &[],
                1e-4,
                3600.0,
                5,
            ),
            sim_time: registry.gauge(
                "fabricsim_sim_time_seconds",
                "Current virtual time of the in-progress run.",
                &[],
            ),
            inflight: registry.gauge(
                "fabricsim_inflight_txs",
                "Transactions created but not yet terminal.",
                &[],
            ),
            q_pool_prep: registry.gauge(
                "fabricsim_queue_depth",
                queue,
                &[("station", "pool_prep")],
            ),
            q_pool_recv: registry.gauge(
                "fabricsim_queue_depth",
                queue,
                &[("station", "pool_recv")],
            ),
            q_peer_endorse: registry.gauge(
                "fabricsim_queue_depth",
                queue,
                &[("station", "peer_endorse")],
            ),
            q_peer_vscc: registry.gauge(
                "fabricsim_queue_depth",
                queue,
                &[("station", "peer_vscc")],
            ),
            q_peer_commit: registry.gauge(
                "fabricsim_queue_depth",
                queue,
                &[("station", "peer_commit")],
            ),
            q_osn_cpu: registry.gauge("fabricsim_queue_depth", queue, &[("station", "osn_cpu")]),
            util_peer_vscc: registry.gauge(
                "fabricsim_station_utilization",
                util,
                &[("station", "peer_vscc")],
            ),
            util_peer_commit: registry.gauge(
                "fabricsim_station_utilization",
                util,
                &[("station", "peer_commit")],
            ),
            health_regime: HEALTH_STATIONS.map(|station| {
                registry.gauge(
                    "fabricsim_health_regime",
                    "Current health-plane regime severity of the station class \
                     (0 stable, 1 saturating, 2 overloaded).",
                    &[("station", station)],
                )
            }),
            health_slo_burn: registry.gauge(
                "fabricsim_health_slo_burn",
                "Most recent window's SLO burn rate (violating fraction / 1% budget).",
                &[],
            ),
            health_events: HealthEventKind::ALL.map(|kind| {
                registry.counter(
                    "fabricsim_health_events_total",
                    "Health-plane events emitted, by kind.",
                    &[("kind", kind.label())],
                )
            }),
            registry,
        };
        fabricsim_peer::install_metrics(fabricsim_peer::PipelineMetrics::register(&m.registry));
        fabricsim_ordering::install_metrics(fabricsim_ordering::CutterMetrics::register(
            &m.registry,
        ));
        Arc::new(m)
    }

    /// The registry backing this bundle (what an exporter serves).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }
}

static GLOBAL: OnceLock<Arc<LiveMetrics>> = OnceLock::new();

/// Installs (or returns the already-installed) process-global bundle. CLI
/// binaries call this once when `--serve-metrics` is requested; every
/// [`crate::Simulation`] constructed afterwards reports into it.
pub fn install_global() -> Arc<LiveMetrics> {
    GLOBAL.get_or_init(LiveMetrics::new).clone()
}

/// The process-global bundle, if one was installed.
pub fn global() -> Option<Arc<LiveMetrics>> {
    GLOBAL.get().cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabricsim_obs::validate_exposition;

    #[test]
    fn fresh_bundle_renders_a_valid_exposition() {
        let m = LiveMetrics::new();
        m.txs_created.add(10);
        m.txs_committed_valid.add(9);
        m.txs_committed_invalid.inc();
        m.e2e_latency.observe(0.75);
        m.sim_time.set(12.5);
        m.q_peer_vscc.set(4.0);
        let text = m.registry().render();
        validate_exposition(&text).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{text}"));
        assert!(text.contains("fabricsim_txs_committed_total{validity=\"valid\"} 9"));
        assert!(text.contains("fabricsim_e2e_latency_seconds_count 1"));
        assert!(text.contains("fabricsim_queue_depth{station=\"peer_vscc\"} 4"));
    }

    #[test]
    fn health_families_are_registered() {
        let m = LiveMetrics::new();
        m.health_regime[3].set(2.0);
        m.health_slo_burn.set(42.0);
        m.health_events[0].add(3);
        let text = m.registry().render();
        validate_exposition(&text).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{text}"));
        assert!(text.contains("fabricsim_health_regime{station=\"peer.vscc\"} 2"));
        assert!(text.contains("fabricsim_health_events_total{kind=\"regime\"} 3"));
        assert!(text.contains("fabricsim_health_slo_burn 42"));
    }

    #[test]
    fn install_global_is_idempotent() {
        let a = install_global();
        let b = install_global();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(global().is_some());
    }
}
