//! # fabricsim — performance characterization of Hyperledger Fabric
//!
//! This crate is the paper's contribution as a library: a complete, phase-
//! instrumented model of a Hyperledger Fabric v1.4-style network — clients,
//! endorsing peers, ordering service (Solo / Kafka / Raft) and validating
//! peers — running on a deterministic discrete-event simulation with a
//! CPU/network cost model calibrated to the paper's 20-machine testbed
//! (see `DESIGN.md` §5).
//!
//! The building blocks come from the sibling crates (`fabricsim-peer`,
//! `fabricsim-ordering`, `fabricsim-raft`, `fabricsim-kafka`, …); this crate
//! wires them into a [`Simulation`], drives an open-loop Poisson workload
//! through the execute → order → validate pipeline, and reports per-phase
//! throughput and latency exactly as the paper measures them.
//!
//! ## Quickstart
//!
//! ```
//! use fabricsim::{PolicySpec, SimConfig, Simulation};
//! use fabricsim::OrdererType;
//!
//! let mut cfg = SimConfig::default();
//! cfg.orderer_type = OrdererType::Solo;
//! cfg.endorsing_peers = 3;
//! cfg.policy = PolicySpec::OrN(3);
//! cfg.arrival_rate_tps = 100.0;
//! cfg.duration_secs = 10.0;
//! cfg.warmup_secs = 2.0;
//!
//! let report = Simulation::new(cfg).run();
//! assert!(report.committed_tps() > 80.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod experiment;
pub mod live;
pub mod metrics;
mod model;
pub mod report;
mod sim;
mod workload;

pub use analytic::{predict, Phase, Prediction};
pub use fabricsim_des::{KernelProfile, LabelProfile};
pub use fabricsim_obs as obs;
pub use fabricsim_types::{BatchConfig, ChannelId, OrdererType, ValidationCode};
pub use live::LiveMetrics;
pub use metrics::{PhaseReport, SummaryReport, TxOutcome, TxTrace};
pub use model::CostModel;
pub use sim::{FaultPlan, RunObservability, RunResult, Simulation, UtilizationReport};
pub use workload::{GossipConfig, ObsConfig, PolicySpec, SimConfig, WorkloadKind};
