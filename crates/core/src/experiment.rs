//! Experiment runners regenerating every table and figure of the paper.
//!
//! Each function returns labelled [`Row`]s ready for [`crate::report`]'s text
//! tables and CSV writers. The `fabricsim-bench` crate's `experiments` binary
//! drives these and writes `results/*.csv` plus `EXPERIMENTS.md` fodder.
//!
//! One λ-sweep (`overall_sweep`) feeds Figs. 2–7: the paper's overall
//! throughput/latency figures and the per-phase breakdowns are different
//! projections of the same runs, exactly as in the original study (one
//! deployment, instrumented per phase).

use fabricsim_types::OrdererType;

use crate::report::Row;
use crate::sim::Simulation;
use crate::workload::{GossipConfig, PolicySpec, SimConfig, WorkloadKind};

/// Coarse scenario-level progress for the long sweeps.
///
/// Disabled by default so library users and tests stay silent; the
/// `experiments` binary enables it (unless `--quiet`). Each sweep registers
/// its scenario count up front and every completed run prints one stderr
/// line: `[i/N] elapsed label: committed tps`. Wall-clock time never feeds
/// back into the simulation, so enabling progress cannot perturb results.
pub mod progress {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::OnceLock;

    use fabricsim_obs::WallClock;

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static TOTAL: AtomicU64 = AtomicU64::new(0);
    static DONE: AtomicU64 = AtomicU64::new(0);
    static START: OnceLock<WallClock> = OnceLock::new();

    /// Turns on progress lines for this process.
    pub fn enable() {
        START.get_or_init(WallClock::start);
        // relaxed: cosmetic stderr flag; nothing orders against it
        ENABLED.store(true, Ordering::Relaxed);
    }

    /// True when [`enable`] was called.
    pub fn enabled() -> bool {
        // relaxed: gates stderr output only; a stale read delays one line
        ENABLED.load(Ordering::Relaxed)
    }

    /// Registers `n` upcoming scenarios (called at the top of each sweep).
    pub(super) fn batch(n: usize) {
        // relaxed: monotonic counter feeding the cosmetic `[i/N]` denominator
        TOTAL.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Reports one completed scenario.
    pub(super) fn done(label: &str, tps: f64) {
        if !enabled() {
            return;
        }
        // relaxed: counters feed one stderr line; races only reorder lines
        let i = DONE.fetch_add(1, Ordering::Relaxed) + 1;
        // relaxed: same cosmetic counter family as above
        let n = TOTAL.load(Ordering::Relaxed);
        let elapsed = START.get_or_init(WallClock::start).elapsed_s();
        eprintln!("  [{i}/{n}] {elapsed:6.1}s  {label}: {tps:.1} committed tps");
    }
}

/// Runs one labelled scenario, reporting progress when enabled.
fn run_row(label: String, cfg: SimConfig) -> Row {
    let summary = Simulation::new(cfg).run();
    progress::done(&label, summary.committed_tps());
    Row { label, summary }
}

/// Run length preset: `Full` reproduces the paper-scale windows; `Quick` is
/// for CI and the Criterion benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// 60 s virtual per point.
    Full,
    /// 16 s virtual per point, coarser sweeps.
    Quick,
}

impl Effort {
    fn apply(self, cfg: &mut SimConfig) {
        match self {
            Effort::Full => {
                cfg.duration_secs = 60.0;
                cfg.warmup_secs = 12.0;
                cfg.cooldown_secs = 5.0;
            }
            Effort::Quick => {
                cfg.duration_secs = 16.0;
                cfg.warmup_secs = 5.0;
                cfg.cooldown_secs = 2.0;
            }
        }
    }

    fn rates(self) -> Vec<f64> {
        match self {
            Effort::Full => vec![50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 350.0, 400.0],
            Effort::Quick => vec![100.0, 250.0, 400.0],
        }
    }
}

fn base_config(effort: Effort) -> SimConfig {
    let mut cfg = SimConfig {
        endorsing_peers: 10,
        committing_peers: 1,
        workload: WorkloadKind::KvPut { payload_bytes: 1 },
        ..SimConfig::default()
    };
    effort.apply(&mut cfg);
    cfg
}

/// The master λ-sweep behind Figs. 2–7: `{Solo, Kafka, Raft} × {OR10, AND5}`
/// at 10 endorsing peers, transaction size 1 byte, BatchSize 100 / 1 s.
pub fn overall_sweep(effort: Effort) -> Vec<Row> {
    let rates = effort.rates();
    progress::batch(OrdererType::ALL.len() * 2 * rates.len());
    let mut rows = Vec::new();
    for orderer in OrdererType::ALL {
        for policy in [PolicySpec::OrN(10), PolicySpec::AndX(5)] {
            for &rate in &rates {
                let mut cfg = base_config(effort);
                cfg.orderer_type = orderer;
                cfg.policy = policy.clone();
                cfg.arrival_rate_tps = rate;
                rows.push(run_row(
                    format!("{orderer}/{} λ={rate:.0}", policy.label()),
                    cfg,
                ));
            }
        }
    }
    rows
}

/// Filters the master sweep to one policy (for the per-phase Figs. 4–7).
pub fn filter_policy<'a>(rows: &'a [Row], policy_label: &str) -> Vec<&'a Row> {
    rows.iter()
        .filter(|r| r.label.contains(&format!("/{policy_label} ")))
        .collect()
}

/// Table II / Table III: scalability of endorsing peers.
///
/// For each `(#peers, policy)` cell the paper reports peak throughput and the
/// latency near the peak; we run each cell twice — at 1.2× the predicted
/// capacity (throughput row) and at 0.85× (latency row) — mirroring how a
/// measurement study locates the knee.
pub fn endorsing_peer_scalability(effort: Effort) -> (Vec<Row>, Vec<Row>) {
    // (policy, applicable peer counts) exactly as the paper's table cells.
    let cells: [(PolicySpec, &[u32]); 4] = [
        (PolicySpec::OrN(10), &[1, 3, 5, 7, 10]),
        (PolicySpec::OrN(3), &[1, 3]),
        (PolicySpec::AndX(5), &[1, 3, 5]),
        (PolicySpec::AndX(3), &[1, 3]),
    ];
    progress::batch(cells.iter().map(|(_, counts)| counts.len()).sum::<usize>() * 2);
    let mut tput_rows = Vec::new();
    let mut lat_rows = Vec::new();
    for (policy, counts) in cells {
        for &n in counts {
            let mut cfg = base_config(effort);
            cfg.orderer_type = OrdererType::Solo;
            cfg.endorsing_peers = n;
            cfg.policy = policy.clone();
            let sigs = cfg.signatures_per_tx();
            let capacity = cfg
                .cost
                .execute_capacity_tps(n as usize)
                .min(cfg.cost.validate_capacity_tps(sigs));

            let mut high = cfg.clone();
            high.arrival_rate_tps = capacity * 1.2;
            tput_rows.push(run_row(format!("{} n={n}", policy.label()), high));

            let mut low = cfg;
            low.arrival_rate_tps = capacity * 0.85;
            lat_rows.push(run_row(format!("{} n={n}", policy.label()), low));
        }
    }
    (tput_rows, lat_rows)
}

/// Fig. 8: throughput and latency vs number of ordering-service nodes, for
/// Kafka and Raft, with ZooKeeper/broker ensembles of 3 and of 7.
///
/// Returns `(throughput_rows, latency_rows)`; throughput measured above the
/// knee (λ = 350), latency below it (λ = 260).
pub fn osn_scalability(effort: Effort) -> (Vec<Row>, Vec<Row>) {
    let osn_counts: &[u32] = match effort {
        Effort::Full => &[4, 6, 8, 10, 12],
        Effort::Quick => &[4, 12],
    };
    progress::batch(2 * 2 * osn_counts.len() * 2);
    let mut tput_rows = Vec::new();
    let mut lat_rows = Vec::new();
    for ensemble in [3u32, 7] {
        for orderer in [OrdererType::Kafka, OrdererType::Raft] {
            for &osns in osn_counts {
                let mut cfg = base_config(effort);
                cfg.orderer_type = orderer;
                cfg.policy = PolicySpec::OrN(10);
                cfg.osn_count = osns;
                cfg.broker_count = ensemble;
                cfg.zk_count = ensemble;
                let label = format!("{orderer} osns={osns} zk=br={ensemble}");

                let mut high = cfg.clone();
                high.arrival_rate_tps = 350.0;
                tput_rows.push(run_row(label.clone(), high));

                let mut low = cfg;
                low.arrival_rate_tps = 260.0;
                lat_rows.push(run_row(label, low));
            }
        }
    }
    (tput_rows, lat_rows)
}

/// Ablation: BatchSize sweep (the paper's §III block-cutting rule 1).
pub fn ablation_batch_size(effort: Effort) -> Vec<Row> {
    let sizes = [10usize, 50, 100, 200, 500];
    progress::batch(sizes.len());
    sizes
        .into_iter()
        .map(|size| {
            let mut cfg = base_config(effort);
            cfg.policy = PolicySpec::OrN(10);
            cfg.arrival_rate_tps = 250.0;
            cfg.batch.max_message_count = size;
            run_row(format!("BatchSize={size}"), cfg)
        })
        .collect()
}

/// Ablation: BatchTimeout sweep at a low rate where timeout-cutting dominates.
pub fn ablation_batch_timeout(effort: Effort) -> Vec<Row> {
    let timeouts = [250u64, 500, 1_000, 2_000];
    progress::batch(timeouts.len());
    timeouts
        .into_iter()
        .map(|ms| {
            let mut cfg = base_config(effort);
            cfg.policy = PolicySpec::OrN(10);
            cfg.arrival_rate_tps = 40.0;
            cfg.batch.batch_timeout_ms = ms;
            run_row(format!("BatchTimeout={ms}ms"), cfg)
        })
        .collect()
}

/// Ablation: what if the committer were parallel? (The paper's conclusion
/// implies the validate bottleneck; this quantifies the headroom.)
pub fn ablation_validation_parallelism(effort: Effort) -> Vec<Row> {
    let threads = [1usize, 2, 4, 8];
    progress::batch(threads.len());
    threads
        .into_iter()
        .map(|threads| {
            let mut cfg = base_config(effort);
            cfg.policy = PolicySpec::OrN(10);
            cfg.arrival_rate_tps = 500.0;
            cfg.cost.validate_threads = threads;
            // Give the execute phase headroom so validation stays the knee.
            cfg.endorsing_peers = 10;
            cfg.cost.client_prep_ms = 12.0;
            run_row(format!("validate_threads={threads}"), cfg)
        })
        .collect()
}

/// Ablation: widen only the VSCC worker pool while MVCC + commit stay serial —
/// the staged-pipeline what-if. Same load point as
/// [`ablation_validation_parallelism`], so the two sweeps are directly
/// comparable: pooling VSCC buys most of the headroom of fully parallel
/// committers until the serial commit tail binds.
pub fn ablation_validator_pool(effort: Effort) -> Vec<Row> {
    let pools = [1usize, 2, 4, 8];
    progress::batch(pools.len());
    pools
        .into_iter()
        .map(|pool| {
            let mut cfg = base_config(effort);
            cfg.policy = PolicySpec::OrN(10);
            cfg.arrival_rate_tps = 500.0;
            cfg.cost.validator_pool_size = pool;
            // Give the execute phase headroom so validation stays the knee.
            cfg.endorsing_peers = 10;
            cfg.cost.client_prep_ms = 12.0;
            run_row(format!("validator_pool={pool}"), cfg)
        })
        .collect()
}

/// Ablation: MVCC conflict rate under a hot-key read-modify-write workload.
pub fn ablation_mvcc_conflicts(effort: Effort) -> Vec<Row> {
    let keyspaces = [2usize, 8, 32, 128, 1024];
    progress::batch(keyspaces.len());
    keyspaces
        .into_iter()
        .map(|keyspace| {
            let mut cfg = base_config(effort);
            cfg.policy = PolicySpec::OrN(10);
            cfg.arrival_rate_tps = 150.0;
            cfg.workload = WorkloadKind::KvRmw {
                keyspace,
                payload_bytes: 1,
            };
            run_row(format!("keyspace={keyspace}"), cfg)
        })
        .collect()
}

/// Ablation: gossip dissemination vs direct delivery, at growing peer counts.
/// Quantifies the block-propagation trade-off the paper's related work
/// discusses: gossip bounds the orderer's delivery fan-out at the cost of one
/// extra mesh hop of latency.
pub fn ablation_gossip(effort: Effort) -> Vec<Row> {
    progress::batch(3 * 2);
    let mut rows = Vec::new();
    for committers in [2u32, 8, 16] {
        for gossip in [None, Some(GossipConfig::default())] {
            let mut cfg = base_config(effort);
            cfg.policy = PolicySpec::OrN(10);
            cfg.arrival_rate_tps = 200.0;
            cfg.committing_peers = committers;
            cfg.gossip = gossip;
            let mode = if cfg.gossip.is_some() {
                "gossip"
            } else {
                "direct"
            };
            rows.push(run_row(format!("{mode} committers={committers}"), cfg));
        }
    }
    rows
}

/// Ablation: network bandwidth sensitivity (the paper's testbed was 1 Gbps;
/// related work reports bandwidth becoming the bottleneck at scale).
pub fn ablation_bandwidth(effort: Effort) -> Vec<Row> {
    let bands = [
        (10_000_000u64, "10Mbps"),
        (100_000_000, "100Mbps"),
        (1_000_000_000, "1Gbps"),
    ];
    progress::batch(bands.len());
    bands
        .into_iter()
        .map(|(bps, label)| {
            let mut cfg = base_config(effort);
            cfg.policy = PolicySpec::OrN(10);
            cfg.arrival_rate_tps = 250.0;
            cfg.committing_peers = 8;
            cfg.workload = WorkloadKind::KvPut {
                payload_bytes: 1024,
            };
            cfg.cost.link_bandwidth_bps = bps;
            run_row(label.to_string(), cfg)
        })
        .collect()
}

/// Ablation: channel count — Fabric's horizontal-scaling mechanism (paper
/// §II; Androulaki et al.'s "Channels" paper, the study's reference [11]).
/// Each channel gets its own consensus instance and commit pipeline; the
/// validate ceiling multiplies until the client pools bind.
pub fn ablation_channels(effort: Effort) -> Vec<Row> {
    let channel_counts = [1u32, 2, 4];
    progress::batch(channel_counts.len());
    channel_counts
        .into_iter()
        .map(|channels| {
            let mut cfg = base_config(effort);
            cfg.orderer_type = OrdererType::Raft;
            cfg.policy = PolicySpec::OrN(10);
            cfg.channels = channels;
            cfg.arrival_rate_tps = 500.0; // above the single-channel ceiling
            run_row(format!("channels={channels}"), cfg)
        })
        .collect()
}

/// Ablation: payload (transaction value) size.
pub fn ablation_payload_size(effort: Effort) -> Vec<Row> {
    let sizes = [1usize, 64, 1024, 8192];
    progress::batch(sizes.len());
    sizes
        .into_iter()
        .map(|bytes| {
            let mut cfg = base_config(effort);
            cfg.policy = PolicySpec::OrN(10);
            cfg.arrival_rate_tps = 250.0;
            cfg.workload = WorkloadKind::KvPut {
                payload_bytes: bytes,
            };
            run_row(format!("payload={bytes}B"), cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_overall_sweep_shapes_match_the_paper() {
        let rows = overall_sweep(Effort::Quick);
        assert_eq!(rows.len(), 3 * 2 * 3);

        // Finding 1+2 (Fig. 2): at λ=400 every orderer saturates OR ≈ 300 and
        // AND ≈ 200, with no significant difference across orderers.
        let sat = |orderer: &str, pol: &str| {
            rows.iter()
                .find(|r| r.label == format!("{orderer}/{pol} λ=400"))
                .map(|r| r.summary.committed_tps())
                .unwrap()
        };
        for orderer in ["Solo", "Kafka", "Raft"] {
            let or = sat(orderer, "OR10");
            let and = sat(orderer, "AND5");
            assert!((260.0..340.0).contains(&or), "{orderer} OR10 sat {or}");
            assert!((170.0..240.0).contains(&and), "{orderer} AND5 sat {and}");
            assert!(and < or - 40.0, "{orderer}: AND must cap below OR");
        }
        let solo = sat("Solo", "OR10");
        let kafka = sat("Kafka", "OR10");
        let raft = sat("Raft", "OR10");
        let spread = (solo - kafka).abs().max((solo - raft).abs());
        assert!(
            spread < 0.15 * solo,
            "orderers should not differ significantly: {solo}/{kafka}/{raft}"
        );

        // Linearity below the knee (Figs. 4/5): at λ=100 all phases track λ.
        let low = rows.iter().find(|r| r.label == "Solo/OR10 λ=100").unwrap();
        assert!((low.summary.execute.throughput_tps - 100.0).abs() < 10.0);
        assert!((low.summary.validate.throughput_tps - 100.0).abs() < 10.0);
    }

    #[test]
    fn quick_table2_scaling_shape() {
        let (tput, lat) = endorsing_peer_scalability(Effort::Quick);
        let get = |label: &str| {
            tput.iter()
                .find(|r| r.label == label)
                .map(|r| r.summary.committed_tps())
                .unwrap_or_else(|| panic!("row {label} missing"))
        };
        // Table II ramp: ≈50/peer under OR until the validate cap.
        assert!(
            (35.0..65.0).contains(&get("OR10 n=1")),
            "{}",
            get("OR10 n=1")
        );
        assert!((120.0..180.0).contains(&get("OR10 n=3")));
        assert!((250.0..330.0).contains(&get("OR10 n=10")));
        // AND5 caps near 200 at n=5.
        assert!((170.0..240.0).contains(&get("AND5 n=5")));
        // Latency rows exist for every throughput row.
        assert_eq!(tput.len(), lat.len());
    }

    #[test]
    fn quick_fig8_is_flat() {
        let (tput, _lat) = osn_scalability(Effort::Quick);
        let values: Vec<f64> = tput.iter().map(|r| r.summary.committed_tps()).collect();
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        let max = values.iter().cloned().fold(0.0, f64::max);
        assert!(
            max - min < 0.2 * max,
            "throughput should be flat across OSN counts/ensembles: {values:?}"
        );
        assert!((250.0..340.0).contains(&min), "all near the validate cap");
    }

    #[test]
    fn filter_policy_selects_rows() {
        let rows = vec![
            Row {
                label: "Solo/OR10 λ=100".into(),
                summary: crate::metrics::summarize(
                    &[],
                    &[],
                    (
                        fabricsim_des::SimTime::ZERO,
                        fabricsim_des::SimTime::from_secs_f64(1.0),
                    ),
                    100.0,
                ),
            },
            Row {
                label: "Solo/AND5 λ=100".into(),
                summary: crate::metrics::summarize(
                    &[],
                    &[],
                    (
                        fabricsim_des::SimTime::ZERO,
                        fabricsim_des::SimTime::from_secs_f64(1.0),
                    ),
                    100.0,
                ),
            },
        ];
        assert_eq!(filter_policy(&rows, "OR10").len(), 1);
        assert_eq!(filter_policy(&rows, "AND5").len(), 1);
    }
}
