//! Closed-form performance predictions from the cost model.
//!
//! The paper's related work (Sukhwani et al., SRDS'17) models Fabric
//! analytically with stochastic reward nets. This module provides the
//! equivalent for fabricsim: first-order queueing formulas over the calibrated
//! [`crate::CostModel`] that predict phase capacities, the bottleneck, latencies and
//! block time *without running the simulator* — and the test suite checks the
//! simulator against them, closing the loop between model and measurement.

use std::fmt;

use crate::workload::SimConfig;

/// The three pipeline phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Client + endorsement (paper's first phase).
    Execute,
    /// Ordering service.
    Order,
    /// Validation + commit (paper's third phase).
    Validate,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::Execute => "execute",
            Phase::Order => "order",
            Phase::Validate => "validate",
        })
    }
}

/// Analytic prediction for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Execute-phase capacity (client pools), tps.
    pub execute_capacity_tps: f64,
    /// Ordering capacity, tps.
    pub order_capacity_tps: f64,
    /// Validate-phase capacity, tps.
    pub validate_capacity_tps: f64,
    /// Peak committed throughput = min of the phases, tps.
    pub peak_committed_tps: f64,
    /// Which phase binds at the peak.
    pub bottleneck: Phase,
    /// Expected mean execute latency at the configured arrival rate, seconds.
    pub execute_latency_s: f64,
    /// Expected mean order+validate latency at the configured rate, seconds
    /// (valid below the knee; above it the queue is unstable).
    pub order_validate_latency_s: f64,
    /// Expected mean block time at the configured rate, seconds.
    pub block_time_s: f64,
    /// Offered-load fraction of the validate phase at the configured rate.
    pub validate_utilization: f64,
}

/// Harmonic number `H_x` (mean of the max of `x` i.i.d. exponentials is
/// `H_x`·mean).
fn harmonic(x: usize) -> f64 {
    (1..=x).map(|i| 1.0 / i as f64).sum()
}

/// Predicts steady-state behaviour for `cfg` (first-order M/D/1 queueing).
pub fn predict(cfg: &SimConfig) -> Prediction {
    let m = &cfg.cost;
    let pools = cfg.endorsing_peers as usize;
    let sigs = cfg.signatures_per_tx().max(1);
    let lambda = cfg.arrival_rate_tps;

    // ---- capacities -----------------------------------------------------
    let execute_capacity = m.execute_capacity_tps(pools);
    // Validate: per-tx cost plus amortized per-block overhead on the
    // committer. With a VSCC pool only the signature/policy stage divides by
    // the pool width; the MVCC + ledger-write tail stays serial.
    let batch = cfg.batch.max_message_count as f64;
    let pool = m.validator_pool_size.max(1);
    let validate_tx_ms = if pool <= 1 {
        m.validate_tx_ms(sigs) + m.validate_block_overhead_ms / batch
    } else {
        m.vscc_tx_ms(sigs) / pool as f64 + m.commit_tx_ms() + m.validate_block_overhead_ms / batch
    };
    let validate_capacity = 1000.0 * m.validate_threads as f64 / validate_tx_ms;
    // Ordering: the OSN CPU threads on the admitting path.
    let per_tx_order_ms = m.osn_admission_ms
        + match cfg.orderer_type {
            fabricsim_types::OrdererType::Solo => m.solo_order_ms,
            fabricsim_types::OrdererType::Kafka => m.kafka_broker_op_ms,
            fabricsim_types::OrdererType::Raft => m.raft_op_ms,
        };
    let order_capacity =
        1000.0 * m.osn_cpu_threads as f64 * cfg.effective_osns() as f64 / per_tx_order_ms;

    // Bottleneck = the smallest capacity, chosen by comparison (not float
    // equality on a min() result, which mislabels exact ties). Validate wins
    // ties: it is the paper's default suspect and the strict `<` below keeps
    // it unless another phase is genuinely lower.
    let mut bottleneck = Phase::Validate;
    let mut peak = validate_capacity;
    for (phase, cap) in [
        (Phase::Execute, execute_capacity),
        (Phase::Order, order_capacity),
    ] {
        if cap < peak {
            bottleneck = phase;
            peak = cap;
        }
    }

    // ---- execute latency --------------------------------------------------
    // Pool prep: M/D/1 waiting time W = rho * s / (2 (1 - rho)).
    let prep_s = m.client_prep_ms / 1000.0;
    let rho_prep = (lambda / execute_capacity).min(0.99);
    let prep_wait = rho_prep * prep_s / (2.0 * (1.0 - rho_prep));
    // Endorsement path: network + peer service + jitter; under AND-x the
    // client waits for the max of x exponential jitters (H_x scaling).
    let path = 2.0 * m.link_propagation_ms / 1000.0
        + m.endorse_tx_ms() / 1000.0
        + harmonic(sigs) * m.endorse_path_jitter_ms / 1000.0;
    let assemble =
        (m.client_assemble_base_ms + m.client_assemble_per_endorsement_ms * sigs as f64) / 1000.0;
    let execute_latency =
        prep_wait + prep_s + m.sdk_pre_ms / 1000.0 + path + assemble + m.sdk_post_ms / 1000.0;

    // ---- block time & order+validate latency -------------------------------
    // Count-cut cadence vs the 1 s timeout.
    let timeout_s = cfg.batch.batch_timeout_ms as f64 / 1000.0;
    let count_cut_s = batch / lambda.max(1e-9);
    let block_time = count_cut_s.min(timeout_s);
    let block_size = (lambda * block_time).min(batch);
    // A transaction waits ~half a block period to be cut, then rides the
    // validation of ~half its block. Blocks arrive nearly deterministically
    // (count- or timeout-cut), so below the knee the committer behaves like a
    // D/D/1 queue: no queueing correction is needed until saturation.
    let validate_half_block_s = (block_size / 2.0) * validate_tx_ms / 1000.0;
    let order_validate_latency =
        block_time / 2.0 + validate_half_block_s + 4.0 * m.link_propagation_ms / 1000.0;

    Prediction {
        execute_capacity_tps: execute_capacity,
        order_capacity_tps: order_capacity,
        validate_capacity_tps: validate_capacity,
        peak_committed_tps: peak,
        bottleneck,
        execute_latency_s: execute_latency,
        order_validate_latency_s: order_validate_latency,
        block_time_s: block_time,
        validate_utilization: lambda / validate_capacity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;
    use crate::workload::{PolicySpec, SimConfig};
    use fabricsim_types::OrdererType;

    fn cfg(policy: PolicySpec, rate: f64) -> SimConfig {
        SimConfig {
            orderer_type: OrdererType::Solo,
            endorsing_peers: 10,
            policy,
            arrival_rate_tps: rate,
            duration_secs: 20.0,
            warmup_secs: 5.0,
            cooldown_secs: 2.0,
            ..SimConfig::default()
        }
    }

    #[test]
    fn capacities_match_the_calibration() {
        let p = predict(&cfg(PolicySpec::OrN(10), 100.0));
        assert!((p.execute_capacity_tps - 526.3).abs() < 5.0);
        assert!((300.0..320.0).contains(&p.validate_capacity_tps));
        assert_eq!(p.bottleneck, Phase::Validate);
        assert!(p.order_capacity_tps > 5_000.0, "ordering never binds");

        let p = predict(&cfg(PolicySpec::AndX(5), 100.0));
        assert!((195.0..215.0).contains(&p.validate_capacity_tps));
        assert_eq!(p.peak_committed_tps, p.validate_capacity_tps);
    }

    #[test]
    fn validator_pool_raises_the_analytic_knee() {
        let base = cfg(PolicySpec::OrN(10), 100.0);
        let p1 = predict(&base);
        let mut c4 = base.clone();
        c4.cost.validator_pool_size = 4;
        let p4 = predict(&c4);
        assert!(
            p4.validate_capacity_tps > 1.5 * p1.validate_capacity_tps,
            "4-wide VSCC pool should lift the knee well past serial: {} vs {}",
            p4.validate_capacity_tps,
            p1.validate_capacity_tps
        );
        // The serial MVCC+commit tail caps the achievable capacity.
        let ceiling = 1000.0 * c4.cost.validate_threads as f64 / c4.cost.commit_tx_ms();
        assert!(
            p4.validate_capacity_tps < ceiling,
            "pooled capacity {} must stay under the serial-commit ceiling {}",
            p4.validate_capacity_tps,
            ceiling
        );
    }

    #[test]
    fn bottleneck_moves_to_execute_with_few_pools() {
        let mut c = cfg(PolicySpec::OrN(10), 40.0);
        c.endorsing_peers = 1;
        let p = predict(&c);
        assert_eq!(p.bottleneck, Phase::Execute);
        assert!((p.peak_committed_tps - 52.6).abs() < 2.0);
    }

    /// The headline check: analytic predictions track the simulator below the
    /// knee, across policies and rates.
    #[test]
    fn predictions_track_the_simulator() {
        for (policy, rate) in [
            (PolicySpec::OrN(10), 100.0),
            (PolicySpec::OrN(10), 250.0),
            (PolicySpec::AndX(5), 100.0),
            (PolicySpec::AndX(5), 180.0),
        ] {
            let c = cfg(policy.clone(), rate);
            let p = predict(&c);
            let s = Simulation::new(c).run();

            let exec_err =
                (p.execute_latency_s - s.execute.latency.mean_s).abs() / s.execute.latency.mean_s;
            assert!(
                exec_err < 0.25,
                "{} λ={rate}: execute latency predicted {:.3}s, simulated {:.3}s",
                policy.label(),
                p.execute_latency_s,
                s.execute.latency.mean_s
            );

            let ov_err = (p.order_validate_latency_s - s.validate.latency.mean_s).abs()
                / s.validate.latency.mean_s;
            assert!(
                ov_err < 0.35,
                "{} λ={rate}: o+v latency predicted {:.3}s, simulated {:.3}s",
                policy.label(),
                p.order_validate_latency_s,
                s.validate.latency.mean_s
            );

            let bt_err = (p.block_time_s - s.mean_block_time_s).abs() / s.mean_block_time_s;
            assert!(
                bt_err < 0.15,
                "{} λ={rate}: block time predicted {:.2}s, simulated {:.2}s",
                policy.label(),
                p.block_time_s,
                s.mean_block_time_s
            );
        }
    }

    #[test]
    fn harmonic_numbers() {
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(3) - (1.0 + 0.5 + 1.0 / 3.0)).abs() < 1e-12);
        assert!((harmonic(5) - 2.2833).abs() < 1e-3);
    }

    #[test]
    fn phase_display() {
        assert_eq!(Phase::Execute.to_string(), "execute");
        assert_eq!(Phase::Order.to_string(), "order");
        assert_eq!(Phase::Validate.to_string(), "validate");
    }
}
