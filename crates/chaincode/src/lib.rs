//! # fabricsim-chaincode — the chaincode engine
//!
//! Chaincode implements the business logic agreed on by the network's
//! participants (paper §II). During the *execute* phase an endorsing peer runs
//! the chaincode against its committed world state **without mutating it**; the
//! run produces a read/write set via the [`ChaincodeStub`], which later drives
//! the order and validate phases.
//!
//! * [`Chaincode`] — the trait user chaincodes implement (`init` / `invoke`).
//! * [`ChaincodeStub`] — the transaction simulator handed to chaincode: reads
//!   hit committed state (recording MVCC versions), writes are buffered, and
//!   read-your-writes is honored exactly as in Fabric's `TxSimulator`.
//! * [`ChaincodeRegistry`] — per-peer installed chaincodes.
//! * [`samples`] — the workloads used by the paper's experiments and this
//!   repo's examples: a 1-byte KV writer, a conflict-prone asset transfer, and
//!   a range-query chaincode.
//!
//! ```
//! use fabricsim_chaincode::{samples::KvWrite, Chaincode, ChaincodeStub};
//! use fabricsim_ledger::StateDb;
//!
//! let state = StateDb::new();
//! let mut stub = ChaincodeStub::new(&state);
//! let cc = KvWrite;
//! cc.invoke(&mut stub, &[b"put".to_vec(), b"k".to_vec(), b"v".to_vec()])?;
//! let rw = stub.into_rw_set();
//! assert_eq!(rw.writes.len(), 1);
//! # Ok::<(), fabricsim_chaincode::ChaincodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod samples;
mod stub;

pub use engine::{Chaincode, ChaincodeError, ChaincodeRegistry};
pub use stub::ChaincodeStub;
