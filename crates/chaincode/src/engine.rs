//! The [`Chaincode`] trait and per-peer registry.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::stub::ChaincodeStub;

/// Errors a chaincode invocation can produce. Failed invocations yield no
/// endorsement (the peer returns `ok = false`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaincodeError {
    /// The function named in `args[0]` does not exist.
    UnknownFunction(String),
    /// Arguments were missing or malformed.
    BadArguments(String),
    /// The business logic rejected the invocation (e.g. insufficient funds).
    Rejected(String),
    /// No chaincode with the requested name is installed.
    NotInstalled(String),
}

impl fmt::Display for ChaincodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaincodeError::UnknownFunction(name) => {
                write!(f, "unknown chaincode function {name:?}")
            }
            ChaincodeError::BadArguments(msg) => write!(f, "bad chaincode arguments: {msg}"),
            ChaincodeError::Rejected(msg) => write!(f, "chaincode rejected the invocation: {msg}"),
            ChaincodeError::NotInstalled(name) => write!(f, "chaincode {name:?} is not installed"),
        }
    }
}

impl Error for ChaincodeError {}

/// A user chaincode: business logic executed during endorsement.
///
/// Implementations must be deterministic — all endorsing peers must produce
/// identical read/write sets for the same arguments and state, or endorsement
/// collection fails (as it does in real Fabric).
pub trait Chaincode: fmt::Debug + Send {
    /// The installed name, e.g. `"kvwrite"`.
    fn name(&self) -> &str;

    /// One-time bootstrap run at channel setup; seeds initial state through
    /// the stub. Default: no-op.
    ///
    /// # Errors
    /// Propagates any [`ChaincodeError`] from the bootstrap logic.
    fn init(&self, _stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        Ok(Vec::new())
    }

    /// Executes one invocation. `args[0]` is the function name by convention.
    ///
    /// # Errors
    /// Any [`ChaincodeError`]; the transaction then receives no endorsement.
    fn invoke(
        &self,
        stub: &mut ChaincodeStub<'_>,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, ChaincodeError>;
}

/// The chaincodes installed on a peer, by name.
///
/// A `BTreeMap` so every view of the registry (iteration, [`names`]) is
/// deterministically ordered — `HashMap`'s per-process `RandomState` is
/// banned from sim-critical crates by `fabricsim-lint`.
///
/// [`names`]: ChaincodeRegistry::names
#[derive(Debug, Default)]
pub struct ChaincodeRegistry {
    installed: BTreeMap<String, Box<dyn Chaincode>>,
}

impl ChaincodeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a chaincode; replaces any previous version of the same name.
    pub fn install(&mut self, chaincode: Box<dyn Chaincode>) {
        self.installed
            .insert(chaincode.name().to_string(), chaincode);
    }

    /// Looks up an installed chaincode.
    ///
    /// # Errors
    /// [`ChaincodeError::NotInstalled`] when absent.
    pub fn get(&self, name: &str) -> Result<&dyn Chaincode, ChaincodeError> {
        self.installed
            .get(name)
            .map(|b| b.as_ref())
            .ok_or_else(|| ChaincodeError::NotInstalled(name.to_string()))
    }

    /// Names of installed chaincodes, sorted (the map's native order).
    pub fn names(&self) -> Vec<&str> {
        self.installed.keys().map(String::as_str).collect()
    }
}

/// Parses a UTF-8 argument, mapping failure to [`ChaincodeError::BadArguments`].
pub(crate) fn utf8_arg<'a>(
    args: &'a [Vec<u8>],
    i: usize,
    what: &str,
) -> Result<&'a str, ChaincodeError> {
    let raw = args
        .get(i)
        .ok_or_else(|| ChaincodeError::BadArguments(format!("missing argument {i} ({what})")))?;
    std::str::from_utf8(raw)
        .map_err(|_| ChaincodeError::BadArguments(format!("argument {i} ({what}) is not UTF-8")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::KvWrite;

    #[test]
    fn registry_install_and_lookup() {
        let mut reg = ChaincodeRegistry::new();
        reg.install(Box::new(KvWrite));
        assert!(reg.get("kvwrite").is_ok());
        assert_eq!(
            reg.get("nope").unwrap_err(),
            ChaincodeError::NotInstalled("nope".into())
        );
        assert_eq!(reg.names(), vec!["kvwrite"]);
    }

    #[test]
    fn utf8_arg_errors_are_descriptive() {
        let args = vec![b"ok".to_vec(), vec![0xFF, 0xFE]];
        assert_eq!(utf8_arg(&args, 0, "key").unwrap(), "ok");
        assert!(matches!(
            utf8_arg(&args, 1, "key"),
            Err(ChaincodeError::BadArguments(_))
        ));
        assert!(matches!(
            utf8_arg(&args, 5, "key"),
            Err(ChaincodeError::BadArguments(_))
        ));
    }

    #[test]
    fn error_display_is_lowercase_prose() {
        let e = ChaincodeError::Rejected("insufficient funds".into());
        assert_eq!(
            e.to_string(),
            "chaincode rejected the invocation: insufficient funds"
        );
    }
}
