//! The transaction simulator handed to running chaincode.

use fabricsim_ledger::StateDb;
use fabricsim_types::RwSet;

/// The chaincode's window onto the ledger during endorsement: reads are
/// recorded with the MVCC version observed, writes are buffered into the
/// read/write set instead of touching state.
#[derive(Debug)]
pub struct ChaincodeStub<'a> {
    state: &'a StateDb,
    rw_set: RwSet,
}

impl<'a> ChaincodeStub<'a> {
    /// Creates a simulator over committed state.
    pub fn new(state: &'a StateDb) -> Self {
        ChaincodeStub {
            state,
            rw_set: RwSet::new(),
        }
    }

    /// Reads a key. Pending writes from this same simulation are visible
    /// (read-your-writes) and do *not* add a read record, matching Fabric's
    /// `TxSimulator` semantics.
    pub fn get_state(&mut self, key: &str) -> Option<Vec<u8>> {
        if let Some(w) = self.rw_set.pending_write(key) {
            return w.value.clone();
        }
        let committed = self.state.get(key);
        self.rw_set.record_read(key, committed.map(|v| v.version));
        committed.map(|v| v.value.clone())
    }

    /// Buffers a write.
    pub fn put_state(&mut self, key: &str, value: Vec<u8>) {
        self.rw_set.record_write(key, Some(value));
    }

    /// Buffers a delete.
    pub fn del_state(&mut self, key: &str) {
        self.rw_set.record_write(key, None);
    }

    /// Iterates committed keys in `[start, end)`, recording a read per key
    /// returned. (Real Fabric also records range metadata to catch phantom
    /// reads; per-key read records give the same conflict behaviour for the
    /// workloads modelled here — see DESIGN.md.)
    pub fn get_state_range(&mut self, start: &str, end: &str) -> Vec<(String, Vec<u8>)> {
        let rows: Vec<(String, Vec<u8>, fabricsim_types::Version)> = self
            .state
            .range(start, end)
            .map(|(k, v)| (k.to_string(), v.value.clone(), v.version))
            .collect();
        let mut out = Vec::with_capacity(rows.len());
        for (k, value, version) in rows {
            self.rw_set.record_read(&k, Some(version));
            out.push((k, value));
        }
        out
    }

    /// Number of reads recorded so far.
    pub fn reads_recorded(&self) -> usize {
        self.rw_set.reads.len()
    }

    /// Number of writes buffered so far.
    pub fn writes_buffered(&self) -> usize {
        self.rw_set.writes.len()
    }

    /// Finishes the simulation, yielding the read/write set.
    pub fn into_rw_set(self) -> RwSet {
        self.rw_set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabricsim_types::Version;

    fn seeded() -> StateDb {
        let mut db = StateDb::new();
        db.seed("a", b"1".to_vec());
        db.apply_write("b", Some(b"2".to_vec()), Version::new(3, 1));
        db
    }

    #[test]
    fn reads_record_versions() {
        let db = seeded();
        let mut stub = ChaincodeStub::new(&db);
        assert_eq!(stub.get_state("a"), Some(b"1".to_vec()));
        assert_eq!(stub.get_state("b"), Some(b"2".to_vec()));
        assert_eq!(stub.get_state("missing"), None);
        let rw = stub.into_rw_set();
        assert_eq!(rw.reads.len(), 3);
        assert_eq!(rw.reads[0].version, Some(Version::GENESIS));
        assert_eq!(rw.reads[1].version, Some(Version::new(3, 1)));
        assert_eq!(rw.reads[2].version, None);
    }

    #[test]
    fn read_your_writes_without_read_record() {
        let db = seeded();
        let mut stub = ChaincodeStub::new(&db);
        stub.put_state("x", b"new".to_vec());
        assert_eq!(stub.get_state("x"), Some(b"new".to_vec()));
        let rw = stub.into_rw_set();
        assert!(
            rw.reads.is_empty(),
            "own write must not create a read record"
        );
        assert_eq!(rw.writes.len(), 1);
    }

    #[test]
    fn delete_is_visible_to_later_reads() {
        let db = seeded();
        let mut stub = ChaincodeStub::new(&db);
        stub.del_state("a");
        assert_eq!(stub.get_state("a"), None);
        let rw = stub.into_rw_set();
        assert!(rw.writes[0].is_delete());
    }

    #[test]
    fn writes_do_not_touch_committed_state() {
        let db = seeded();
        {
            let mut stub = ChaincodeStub::new(&db);
            stub.put_state("a", b"mutated".to_vec());
            let _ = stub.into_rw_set();
        }
        assert_eq!(db.get("a").unwrap().value, b"1");
    }

    #[test]
    fn range_records_reads() {
        let db = seeded();
        let mut stub = ChaincodeStub::new(&db);
        let rows = stub.get_state_range("a", "c");
        assert_eq!(rows.len(), 2);
        assert_eq!(stub.reads_recorded(), 2);
        assert_eq!(stub.writes_buffered(), 0);
    }
}
