//! Sample chaincodes: the paper's benchmark workload plus two richer ones.

use crate::engine::{utf8_arg, Chaincode, ChaincodeError};
use crate::stub::ChaincodeStub;

/// The paper's benchmark chaincode: blind key/value writes (the experiments
/// write a 1-byte value per transaction) and simple reads.
///
/// Functions:
/// * `put <key> <value>` — write `value` under `key` (no read: conflict-free).
/// * `get <key>` — read a key, returning its bytes.
/// * `rmw <key> <value>` — read-modify-write (read records the version, so
///   concurrent writers to the same key MVCC-conflict).
#[derive(Debug, Clone, Copy, Default)]
pub struct KvWrite;

impl Chaincode for KvWrite {
    fn name(&self) -> &str {
        "kvwrite"
    }

    fn invoke(
        &self,
        stub: &mut ChaincodeStub<'_>,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, ChaincodeError> {
        let func = utf8_arg(args, 0, "function")?;
        match func {
            "put" => {
                let key = utf8_arg(args, 1, "key")?;
                let value = args
                    .get(2)
                    .ok_or_else(|| ChaincodeError::BadArguments("missing value".into()))?;
                stub.put_state(key, value.clone());
                Ok(Vec::new())
            }
            "get" => {
                let key = utf8_arg(args, 1, "key")?;
                Ok(stub.get_state(key).unwrap_or_default())
            }
            "rmw" => {
                let key = utf8_arg(args, 1, "key")?;
                let value = args
                    .get(2)
                    .ok_or_else(|| ChaincodeError::BadArguments("missing value".into()))?;
                let _old = stub.get_state(key); // records the read version
                stub.put_state(key, value.clone());
                Ok(Vec::new())
            }
            other => Err(ChaincodeError::UnknownFunction(other.to_string())),
        }
    }
}

/// A money-transfer chaincode over numbered accounts — the "bank account"
/// application the paper's related-work section discusses, with genuine
/// read-write conflicts under contention.
///
/// Functions:
/// * `transfer <from> <to> <amount>` — moves funds, rejecting overdrafts.
/// * `balance <account>` — reads a balance.
#[derive(Debug, Clone, Copy)]
pub struct AssetTransfer {
    /// Accounts seeded at init: `acct0000 … acct{n-1}`.
    pub accounts: u32,
    /// Initial balance per account.
    pub initial_balance: u64,
}

impl Default for AssetTransfer {
    fn default() -> Self {
        AssetTransfer {
            accounts: 100,
            initial_balance: 1_000,
        }
    }
}

impl AssetTransfer {
    /// The state key for account `i`.
    pub fn account_key(i: u32) -> String {
        format!("acct{i:06}")
    }

    fn read_balance(stub: &mut ChaincodeStub<'_>, key: &str) -> Result<u64, ChaincodeError> {
        let raw = stub
            .get_state(key)
            .ok_or_else(|| ChaincodeError::Rejected(format!("no such account {key:?}")))?;
        let text = std::str::from_utf8(&raw)
            .map_err(|_| ChaincodeError::Rejected("corrupt balance".into()))?;
        text.parse()
            .map_err(|_| ChaincodeError::Rejected("corrupt balance".into()))
    }
}

impl Chaincode for AssetTransfer {
    fn name(&self) -> &str {
        "asset-transfer"
    }

    fn init(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        for i in 0..self.accounts {
            stub.put_state(
                &Self::account_key(i),
                self.initial_balance.to_string().into_bytes(),
            );
        }
        Ok(Vec::new())
    }

    fn invoke(
        &self,
        stub: &mut ChaincodeStub<'_>,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, ChaincodeError> {
        let func = utf8_arg(args, 0, "function")?;
        match func {
            "transfer" => {
                let from = utf8_arg(args, 1, "from")?.to_string();
                let to = utf8_arg(args, 2, "to")?.to_string();
                let amount: u64 = utf8_arg(args, 3, "amount")?.parse().map_err(|_| {
                    ChaincodeError::BadArguments("amount must be an integer".into())
                })?;
                if from == to {
                    return Err(ChaincodeError::BadArguments("from == to".into()));
                }
                let from_bal = Self::read_balance(stub, &from)?;
                let to_bal = Self::read_balance(stub, &to)?;
                if from_bal < amount {
                    return Err(ChaincodeError::Rejected(format!(
                        "insufficient funds: {from_bal} < {amount}"
                    )));
                }
                stub.put_state(&from, (from_bal - amount).to_string().into_bytes());
                stub.put_state(&to, (to_bal + amount).to_string().into_bytes());
                Ok(Vec::new())
            }
            "balance" => {
                let acct = utf8_arg(args, 1, "account")?.to_string();
                let bal = Self::read_balance(stub, &acct)?;
                Ok(bal.to_string().into_bytes())
            }
            other => Err(ChaincodeError::UnknownFunction(other.to_string())),
        }
    }
}

/// A read-only range-query chaincode (`scan <start> <end>`), exercising the
/// state database's iterator path.
#[derive(Debug, Clone, Copy, Default)]
pub struct RangeQuery;

impl Chaincode for RangeQuery {
    fn name(&self) -> &str {
        "range-query"
    }

    fn invoke(
        &self,
        stub: &mut ChaincodeStub<'_>,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, ChaincodeError> {
        let func = utf8_arg(args, 0, "function")?;
        if func != "scan" {
            return Err(ChaincodeError::UnknownFunction(func.to_string()));
        }
        let start = utf8_arg(args, 1, "start")?;
        let end = utf8_arg(args, 2, "end")?;
        let rows = stub.get_state_range(start, end);
        let mut out = Vec::new();
        for (k, v) in rows {
            out.extend_from_slice(k.as_bytes());
            out.push(b'=');
            out.extend_from_slice(&v);
            out.push(b'\n');
        }
        Ok(out)
    }
}

/// Builds the `put` invocation for a payload of `size` bytes — the paper's
/// workload generator ("transaction size of 1 byte" in Fig. 2).
pub fn put_args(key: &str, size: usize) -> Vec<Vec<u8>> {
    vec![b"put".to_vec(), key.as_bytes().to_vec(), vec![b'x'; size]]
}

/// The Smallbank benchmark chaincode — the standard banking workload of the
/// Blockbench framework (Dinh et al., SIGMOD'17), which the paper cites as the
/// first private-blockchain evaluation framework. Each customer has a
/// *savings* and a *checking* account; six operations mix reads and writes.
///
/// Functions (`<id>` is a customer index):
/// * `transact_savings <id> <amount>` — add to savings (may reject overdraft).
/// * `deposit_checking <id> <amount>` — add to checking.
/// * `send_payment <from> <to> <amount>` — checking → checking transfer.
/// * `write_check <id> <amount>` — deduct from checking (can overdraw by
///   design of the original benchmark, down to 0 here).
/// * `amalgamate <id>` — move everything from savings into checking.
/// * `query <id>` — read both balances.
#[derive(Debug, Clone, Copy)]
pub struct Smallbank {
    /// Customers seeded at init.
    pub customers: u32,
    /// Initial balance for each savings and checking account.
    pub initial_balance: u64,
}

impl Default for Smallbank {
    fn default() -> Self {
        Smallbank {
            customers: 100,
            initial_balance: 10_000,
        }
    }
}

impl Smallbank {
    /// The savings key for customer `i`.
    pub fn savings_key(i: u32) -> String {
        format!("sav{i:06}")
    }

    /// The checking key for customer `i`.
    pub fn checking_key(i: u32) -> String {
        format!("chk{i:06}")
    }

    fn read_u64(stub: &mut ChaincodeStub<'_>, key: &str) -> Result<u64, ChaincodeError> {
        let raw = stub
            .get_state(key)
            .ok_or_else(|| ChaincodeError::Rejected(format!("no such account {key:?}")))?;
        std::str::from_utf8(&raw)
            .ok()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| ChaincodeError::Rejected("corrupt balance".into()))
    }

    fn write_u64(stub: &mut ChaincodeStub<'_>, key: &str, v: u64) {
        stub.put_state(key, v.to_string().into_bytes());
    }
}

impl Chaincode for Smallbank {
    fn name(&self) -> &str {
        "smallbank"
    }

    fn init(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        for i in 0..self.customers {
            Self::write_u64(stub, &Self::savings_key(i), self.initial_balance);
            Self::write_u64(stub, &Self::checking_key(i), self.initial_balance);
        }
        Ok(Vec::new())
    }

    fn invoke(
        &self,
        stub: &mut ChaincodeStub<'_>,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, ChaincodeError> {
        let func = utf8_arg(args, 0, "function")?;
        let id_arg = |i: usize| -> Result<u32, ChaincodeError> {
            utf8_arg(args, i, "customer")?
                .parse()
                .map_err(|_| ChaincodeError::BadArguments("customer id must be an integer".into()))
        };
        let amount_arg = |i: usize| -> Result<u64, ChaincodeError> {
            utf8_arg(args, i, "amount")?
                .parse()
                .map_err(|_| ChaincodeError::BadArguments("amount must be an integer".into()))
        };
        match func {
            "transact_savings" => {
                let (id, amount) = (id_arg(1)?, amount_arg(2)?);
                let key = Self::savings_key(id);
                let bal = Self::read_u64(stub, &key)?;
                Self::write_u64(stub, &key, bal + amount);
                Ok(Vec::new())
            }
            "deposit_checking" => {
                let (id, amount) = (id_arg(1)?, amount_arg(2)?);
                let key = Self::checking_key(id);
                let bal = Self::read_u64(stub, &key)?;
                Self::write_u64(stub, &key, bal + amount);
                Ok(Vec::new())
            }
            "send_payment" => {
                let (from, to, amount) = (id_arg(1)?, id_arg(2)?, amount_arg(3)?);
                if from == to {
                    return Err(ChaincodeError::BadArguments("from == to".into()));
                }
                let (fk, tk) = (Self::checking_key(from), Self::checking_key(to));
                let fb = Self::read_u64(stub, &fk)?;
                let tb = Self::read_u64(stub, &tk)?;
                if fb < amount {
                    return Err(ChaincodeError::Rejected(
                        "insufficient checking funds".into(),
                    ));
                }
                Self::write_u64(stub, &fk, fb - amount);
                Self::write_u64(stub, &tk, tb + amount);
                Ok(Vec::new())
            }
            "write_check" => {
                let (id, amount) = (id_arg(1)?, amount_arg(2)?);
                let key = Self::checking_key(id);
                let bal = Self::read_u64(stub, &key)?;
                Self::write_u64(stub, &key, bal.saturating_sub(amount));
                Ok(Vec::new())
            }
            "amalgamate" => {
                let id = id_arg(1)?;
                let (sk, ck) = (Self::savings_key(id), Self::checking_key(id));
                let sb = Self::read_u64(stub, &sk)?;
                let cb = Self::read_u64(stub, &ck)?;
                Self::write_u64(stub, &sk, 0);
                Self::write_u64(stub, &ck, cb + sb);
                Ok(Vec::new())
            }
            "query" => {
                let id = id_arg(1)?;
                let sb = Self::read_u64(stub, &Self::savings_key(id))?;
                let cb = Self::read_u64(stub, &Self::checking_key(id))?;
                Ok(format!("savings={sb} checking={cb}").into_bytes())
            }
            other => Err(ChaincodeError::UnknownFunction(other.to_string())),
        }
    }
}

/// Wraps another chaincode and injects a peer-specific extra write into every
/// invocation — *non-deterministic chaincode*, the classic Fabric failure mode
/// where endorsers disagree on the simulation result. Used by the fault
/// injector; honest clients detect the divergence while collecting
/// endorsements (under policies requiring more than one endorser).
#[derive(Debug)]
pub struct Nondeterministic<C> {
    /// The wrapped chaincode.
    pub inner: C,
    /// Distinguishing tag mixed into the injected write (e.g. the peer index).
    pub taint: u32,
}

impl<C: Chaincode> Chaincode for Nondeterministic<C> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn init(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        self.inner.init(stub)
    }

    fn invoke(
        &self,
        stub: &mut ChaincodeStub<'_>,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, ChaincodeError> {
        let out = self.inner.invoke(stub, args)?;
        // The divergence: a write only this replica produces.
        stub.put_state("$nondeterministic", self.taint.to_le_bytes().to_vec());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabricsim_ledger::StateDb;

    fn run(
        cc: &dyn Chaincode,
        state: &StateDb,
        args: &[Vec<u8>],
    ) -> Result<(Vec<u8>, fabricsim_types::RwSet), ChaincodeError> {
        let mut stub = ChaincodeStub::new(state);
        let out = cc.invoke(&mut stub, args)?;
        Ok((out, stub.into_rw_set()))
    }

    #[test]
    fn kvwrite_put_is_conflict_free() {
        let state = StateDb::new();
        let (_, rw) = run(&KvWrite, &state, &put_args("k", 1)).unwrap();
        assert!(rw.reads.is_empty());
        assert_eq!(rw.writes.len(), 1);
        assert_eq!(rw.writes[0].value.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn kvwrite_rmw_records_read() {
        let mut state = StateDb::new();
        state.seed("k", b"old".to_vec());
        let (_, rw) = run(
            &KvWrite,
            &state,
            &[b"rmw".to_vec(), b"k".to_vec(), b"new".to_vec()],
        )
        .unwrap();
        assert_eq!(rw.reads.len(), 1);
        assert_eq!(rw.writes.len(), 1);
    }

    #[test]
    fn kvwrite_rejects_unknown_function() {
        let state = StateDb::new();
        assert!(matches!(
            run(&KvWrite, &state, &[b"frob".to_vec()]),
            Err(ChaincodeError::UnknownFunction(_))
        ));
    }

    #[test]
    fn asset_transfer_init_seeds_accounts() {
        let state = StateDb::new();
        let cc = AssetTransfer {
            accounts: 3,
            initial_balance: 50,
        };
        let mut stub = ChaincodeStub::new(&state);
        cc.init(&mut stub).unwrap();
        let rw = stub.into_rw_set();
        assert_eq!(rw.writes.len(), 3);
        assert_eq!(rw.writes[0].key, "acct000000");
    }

    #[test]
    fn asset_transfer_moves_funds() {
        let mut state = StateDb::new();
        state.seed(&AssetTransfer::account_key(0), b"100".to_vec());
        state.seed(&AssetTransfer::account_key(1), b"100".to_vec());
        let cc = AssetTransfer::default();
        let (_, rw) = run(
            &cc,
            &state,
            &[
                b"transfer".to_vec(),
                AssetTransfer::account_key(0).into_bytes(),
                AssetTransfer::account_key(1).into_bytes(),
                b"30".to_vec(),
            ],
        )
        .unwrap();
        assert_eq!(rw.reads.len(), 2, "both balances read");
        let get = |k: &str| {
            rw.writes
                .iter()
                .find(|w| w.key == k)
                .and_then(|w| w.value.clone())
                .unwrap()
        };
        assert_eq!(get("acct000000"), b"70");
        assert_eq!(get("acct000001"), b"130");
    }

    #[test]
    fn asset_transfer_rejects_overdraft_and_self_transfer() {
        let mut state = StateDb::new();
        state.seed(&AssetTransfer::account_key(0), b"10".to_vec());
        state.seed(&AssetTransfer::account_key(1), b"10".to_vec());
        let cc = AssetTransfer::default();
        let overdraft = run(
            &cc,
            &state,
            &[
                b"transfer".to_vec(),
                AssetTransfer::account_key(0).into_bytes(),
                AssetTransfer::account_key(1).into_bytes(),
                b"999".to_vec(),
            ],
        );
        assert!(matches!(overdraft, Err(ChaincodeError::Rejected(_))));
        let self_xfer = run(
            &cc,
            &state,
            &[
                b"transfer".to_vec(),
                AssetTransfer::account_key(0).into_bytes(),
                AssetTransfer::account_key(0).into_bytes(),
                b"1".to_vec(),
            ],
        );
        assert!(matches!(self_xfer, Err(ChaincodeError::BadArguments(_))));
    }

    #[test]
    fn balance_reads() {
        let mut state = StateDb::new();
        state.seed(&AssetTransfer::account_key(2), b"42".to_vec());
        let cc = AssetTransfer::default();
        let (out, rw) = run(
            &cc,
            &state,
            &[
                b"balance".to_vec(),
                AssetTransfer::account_key(2).into_bytes(),
            ],
        )
        .unwrap();
        assert_eq!(out, b"42");
        assert_eq!(rw.reads.len(), 1);
        assert!(rw.writes.is_empty());
    }

    #[test]
    fn smallbank_init_and_ops() {
        let mut state = StateDb::new();
        let sb = Smallbank {
            customers: 3,
            initial_balance: 100,
        };
        {
            let mut stub = ChaincodeStub::new(&state);
            sb.init(&mut stub).unwrap();
            let rw = stub.into_rw_set();
            assert_eq!(rw.writes.len(), 6, "savings + checking per customer");
            for w in rw.writes {
                state.seed(&w.key, w.value.unwrap());
            }
        }
        // send_payment moves checking funds.
        let (_, rw) = run(
            &sb,
            &state,
            &[
                b"send_payment".to_vec(),
                b"0".to_vec(),
                b"1".to_vec(),
                b"40".to_vec(),
            ],
        )
        .unwrap();
        let val = |rw: &fabricsim_types::RwSet, k: &str| {
            rw.writes
                .iter()
                .find(|w| w.key == k)
                .unwrap()
                .value
                .clone()
                .unwrap()
        };
        assert_eq!(val(&rw, &Smallbank::checking_key(0)), b"60");
        assert_eq!(val(&rw, &Smallbank::checking_key(1)), b"140");
        assert_eq!(rw.reads.len(), 2);

        // Overdraft rejected.
        let r = run(
            &sb,
            &state,
            &[
                b"send_payment".to_vec(),
                b"0".to_vec(),
                b"1".to_vec(),
                b"9999".to_vec(),
            ],
        );
        assert!(matches!(r, Err(ChaincodeError::Rejected(_))));

        // amalgamate merges savings into checking.
        let (_, rw) = run(&sb, &state, &[b"amalgamate".to_vec(), b"2".to_vec()]).unwrap();
        assert_eq!(val(&rw, &Smallbank::savings_key(2)), b"0");
        assert_eq!(val(&rw, &Smallbank::checking_key(2)), b"200");

        // write_check saturates at zero (benchmark semantics).
        let (_, rw) = run(
            &sb,
            &state,
            &[b"write_check".to_vec(), b"0".to_vec(), b"500".to_vec()],
        )
        .unwrap();
        assert_eq!(val(&rw, &Smallbank::checking_key(0)), b"0");

        // query is read-only.
        let (out, rw) = run(&sb, &state, &[b"query".to_vec(), b"1".to_vec()]).unwrap();
        assert_eq!(out, b"savings=100 checking=100");
        assert!(rw.writes.is_empty());
        assert_eq!(rw.reads.len(), 2);
    }

    #[test]
    fn smallbank_rejects_garbage() {
        let state = StateDb::new();
        let sb = Smallbank::default();
        assert!(matches!(
            run(
                &sb,
                &state,
                &[
                    b"send_payment".to_vec(),
                    b"1".to_vec(),
                    b"1".to_vec(),
                    b"5".to_vec()
                ]
            ),
            Err(ChaincodeError::BadArguments(_))
        ));
        assert!(matches!(
            run(
                &sb,
                &state,
                &[b"transact_savings".to_vec(), b"x".to_vec(), b"5".to_vec()]
            ),
            Err(ChaincodeError::BadArguments(_))
        ));
        assert!(matches!(
            run(&sb, &state, &[b"frobnicate".to_vec()]),
            Err(ChaincodeError::UnknownFunction(_))
        ));
        assert!(matches!(
            run(&sb, &state, &[b"query".to_vec(), b"7".to_vec()]),
            Err(ChaincodeError::Rejected(_)),
        ));
    }

    #[test]
    fn nondeterministic_wrapper_diverges_per_taint() {
        let state = StateDb::new();
        let honest = KvWrite;
        let tainted = Nondeterministic {
            inner: KvWrite,
            taint: 3,
        };
        let (_, rw_honest) = run(&honest, &state, &put_args("k", 1)).unwrap();
        let (_, rw_tainted) = run(&tainted, &state, &put_args("k", 1)).unwrap();
        assert_eq!(
            tainted.name(),
            "kvwrite",
            "wrapper masquerades as the original"
        );
        assert_ne!(rw_honest, rw_tainted);
        assert!(rw_tainted
            .writes
            .iter()
            .any(|w| w.key == "$nondeterministic"));
        // Two differently tainted replicas also disagree with each other.
        let other = Nondeterministic {
            inner: KvWrite,
            taint: 4,
        };
        let (_, rw_other) = run(&other, &state, &put_args("k", 1)).unwrap();
        assert_ne!(rw_tainted, rw_other);
    }

    #[test]
    fn range_query_scans() {
        let mut state = StateDb::new();
        for (k, v) in [("a", "1"), ("b", "2"), ("c", "3")] {
            state.seed(k, v.as_bytes().to_vec());
        }
        let (out, rw) = run(
            &RangeQuery,
            &state,
            &[b"scan".to_vec(), b"a".to_vec(), b"c".to_vec()],
        )
        .unwrap();
        assert_eq!(out, b"a=1\nb=2\n");
        assert_eq!(rw.reads.len(), 2);
    }
}
