//! The workspace symbol graph: every `fn` across the 16 crates, plus a
//! conservative call graph with `use`-aware name resolution.
//!
//! Resolution is deliberately *over-approximate* — an unresolved call adds no
//! edge (external std/alloc calls), an ambiguous one adds an edge to every
//! candidate. The interprocedural passes ([`crate::taint`]) are audits, so a
//! spurious edge costs a human a glance at a call chain; a missing edge
//! costs the workspace its determinism contract. The tie-breaking order:
//!
//! * `self.method(…)` resolves to the enclosing `impl` first, then to any
//!   workspace method of that name;
//! * `Type::assoc(…)` and `receiver.method(…)` resolve by `(type, name)`
//!   when the type is known, else by method name alone;
//! * free `helper(…)` resolves in the file's own module, then through its
//!   `use` imports, then to same-crate fns of that name;
//! * fully-qualified `crate::a::b::f(…)` and `fabricsim_x::f(…)` paths
//!   resolve across crates.

use std::collections::BTreeMap;

use crate::parse::{CallSite, FileAst};
use crate::rules::FileContext;
use crate::tokenizer::Token;

/// One parsed file, ready for graph construction.
pub struct ParsedFile {
    /// Classification (crate, kind, path).
    pub ctx: FileContext,
    /// The full token stream (comments included; body ranges index into it).
    pub tokens: Vec<Token>,
    /// The recovered item structure.
    pub ast: FileAst,
    /// The file's `lint:allow` annotations (structural passes consult them
    /// to skip already-audited sites).
    pub allows: Vec<crate::allow::Allow>,
}

/// One function symbol in the workspace.
#[derive(Debug, Clone)]
pub struct Symbol {
    /// Short crate name (`core`, `obs`, …).
    pub krate: String,
    /// Module path inside the crate (file path + inline mods).
    pub module: Vec<String>,
    /// Enclosing impl/trait type, if a method.
    pub self_ty: Option<String>,
    /// Trait implemented, for `impl Trait for Type` methods.
    pub trait_name: Option<String>,
    /// Function name.
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based declaration line.
    pub line: u32,
    /// 1-based declaration column.
    pub col: u32,
    /// Bare-`pub` visibility.
    pub is_pub: bool,
    /// Inside a test region.
    pub in_test: bool,
    /// Index of the owning [`ParsedFile`].
    pub file_idx: usize,
    /// Index into that file's `ast.fns`.
    pub fn_idx: usize,
}

impl Symbol {
    /// `crate::module::Type::name`-style display path.
    #[must_use]
    pub fn qualified(&self) -> String {
        let mut out = format!("fabricsim_{}", self.krate.replace('-', "_"));
        for m in &self.module {
            out.push_str("::");
            out.push_str(m);
        }
        if let Some(ty) = &self.self_ty {
            out.push_str("::");
            out.push_str(ty);
        }
        out.push_str("::");
        out.push_str(&self.name);
        out
    }
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallEdge {
    /// Callee symbol id.
    pub to: usize,
    /// Call-site line in the caller's file.
    pub line: u32,
    /// Call-site column.
    pub col: u32,
}

/// The workspace symbol + call graph.
pub struct SymbolGraph {
    /// All symbols; the id is the index.
    pub symbols: Vec<Symbol>,
    /// Forward adjacency: `callees[id]` = calls made by `id`.
    pub callees: Vec<Vec<CallEdge>>,
    /// Reverse adjacency: `callers[id]` = ids that call `id` (deduped).
    pub callers: Vec<Vec<usize>>,
}

/// Maps a `use`d extern-crate name (`fabricsim_des`) to the short crate key.
fn crate_key(segment: &str) -> Option<String> {
    segment
        .strip_prefix("fabricsim_")
        .map(|rest| rest.replace('_', "-"))
}

/// Derives a file's module path within its crate from the workspace-relative
/// path: `crates/core/src/a/b.rs` → `["a", "b"]`, `lib.rs` → `[]`,
/// `a/mod.rs` → `["a"]`.
fn file_module_path(rel_path: &str) -> Vec<String> {
    let parts: Vec<&str> = rel_path.split('/').collect();
    // Find the `src` (or `tests`/`benches`) anchor and take what follows.
    let anchor = parts
        .iter()
        .position(|p| *p == "src" || *p == "tests" || *p == "benches");
    let Some(a) = anchor else { return Vec::new() };
    let mut mods: Vec<String> = Vec::new();
    for (i, part) in parts.iter().enumerate().skip(a + 1) {
        let last = i == parts.len() - 1;
        if last {
            let stem = part.strip_suffix(".rs").unwrap_or(part);
            if stem != "lib" && stem != "main" && stem != "mod" {
                mods.push(stem.to_string());
            }
        } else if *part != "bin" {
            mods.push((*part).to_string());
        }
    }
    mods
}

#[allow(clippy::struct_field_names)] // the `by_` prefix names the lookup key
struct Index {
    /// `(crate, module-path-joined, name)` → ids (free fns).
    by_module: BTreeMap<(String, String, String), Vec<usize>>,
    /// `(type, name)` → ids (methods / assoc fns).
    by_type: BTreeMap<(String, String), Vec<usize>>,
    /// method name → ids (any impl fn).
    by_method: BTreeMap<String, Vec<usize>>,
    /// `(crate, name)` → ids (free fns anywhere in the crate).
    by_crate: BTreeMap<(String, String), Vec<usize>>,
}

impl SymbolGraph {
    /// Builds the graph from a set of parsed files. File order is the
    /// caller's (the engine sorts paths), so symbol ids are deterministic.
    #[must_use]
    #[allow(clippy::too_many_lines)] // index construction + resolution in one pass
    pub fn build(files: &[ParsedFile]) -> SymbolGraph {
        let mut symbols: Vec<Symbol> = Vec::new();
        for (file_idx, pf) in files.iter().enumerate() {
            let krate = pf
                .ctx
                .crate_name
                .clone()
                .unwrap_or_else(|| "scratch".to_string());
            let base = file_module_path(&pf.ctx.rel_path);
            for (fn_idx, f) in pf.ast.fns.iter().enumerate() {
                let mut module = base.clone();
                module.extend(f.module.iter().cloned());
                symbols.push(Symbol {
                    krate: krate.clone(),
                    module,
                    self_ty: f.self_ty.clone(),
                    trait_name: f.trait_name.clone(),
                    name: f.name.clone(),
                    file: pf.ctx.rel_path.clone(),
                    line: f.line,
                    col: f.col,
                    is_pub: f.is_pub,
                    in_test: f.in_test,
                    file_idx,
                    fn_idx,
                });
            }
        }

        let mut index = Index {
            by_module: BTreeMap::new(),
            by_type: BTreeMap::new(),
            by_method: BTreeMap::new(),
            by_crate: BTreeMap::new(),
        };
        for (id, s) in symbols.iter().enumerate() {
            if let Some(ty) = &s.self_ty {
                index
                    .by_type
                    .entry((ty.clone(), s.name.clone()))
                    .or_default()
                    .push(id);
                index.by_method.entry(s.name.clone()).or_default().push(id);
            } else {
                index
                    .by_module
                    .entry((s.krate.clone(), s.module.join("::"), s.name.clone()))
                    .or_default()
                    .push(id);
                index
                    .by_crate
                    .entry((s.krate.clone(), s.name.clone()))
                    .or_default()
                    .push(id);
            }
        }

        let mut callees: Vec<Vec<CallEdge>> = vec![Vec::new(); symbols.len()];
        for (id, s) in symbols.iter().enumerate() {
            let pf = &files[s.file_idx];
            let decl = &pf.ast.fns[s.fn_idx];
            for call in &decl.calls {
                let targets = resolve(call, s, pf, &index);
                for to in targets {
                    if to == id {
                        continue; // self-recursion adds nothing to reachability
                    }
                    let edge = CallEdge {
                        to,
                        line: call.line,
                        col: call.col,
                    };
                    if !callees[id].contains(&edge) {
                        callees[id].push(edge);
                    }
                }
            }
        }
        let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); symbols.len()];
        for (id, edges) in callees.iter().enumerate() {
            for e in edges {
                if !reverse[e.to].contains(&id) {
                    reverse[e.to].push(id);
                }
            }
        }
        SymbolGraph {
            symbols,
            callees,
            callers: reverse,
        }
    }

    /// Symbols in sim-critical crates whose bare-`pub` fns form the
    /// determinism-taint sink set.
    #[must_use]
    pub fn public_sim_critical(&self) -> Vec<usize> {
        self.symbols
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.is_pub
                    && !s.in_test
                    && crate::rules::SIM_CRITICAL_CRATES.contains(&s.krate.as_str())
            })
            .map(|(id, _)| id)
            .collect()
    }
}

/// Resolves one call site to candidate symbol ids. Empty = external.
#[allow(clippy::too_many_lines)] // one arm per path shape; splitting obscures the order
fn resolve(call: &CallSite, caller: &Symbol, pf: &ParsedFile, index: &Index) -> Vec<usize> {
    if call.is_method {
        let name = &call.path[0];
        // `self.m(…)`: the enclosing impl wins when it has the method.
        if call.recv_self {
            if let Some(ty) = &caller.self_ty {
                if let Some(ids) = index.by_type.get(&(ty.clone(), name.clone())) {
                    return ids.clone();
                }
            }
        }
        // Any workspace method of that name (conservative).
        return index.by_method.get(name).cloned().unwrap_or_default();
    }
    match call.path.as_slice() {
        [name] => {
            // Same module first.
            let key = (caller.krate.clone(), caller.module.join("::"), name.clone());
            if let Some(ids) = index.by_module.get(&key) {
                return ids.clone();
            }
            // `use` imports binding this name.
            for u in &pf.ast.uses {
                if &u.alias == name {
                    if let Some(ids) = resolve_use_path(&u.path, caller, index) {
                        return ids;
                    }
                }
            }
            // Same crate, any module (covers `super::`-style siblings the
            // parser flattened away).
            index
                .by_crate
                .get(&(caller.krate.clone(), name.clone()))
                .cloned()
                .unwrap_or_default()
        }
        [qual, name] => {
            // `Self::assoc(…)`.
            if qual == "Self" {
                if let Some(ty) = &caller.self_ty {
                    return index
                        .by_type
                        .get(&(ty.clone(), name.clone()))
                        .cloned()
                        .unwrap_or_default();
                }
                return Vec::new();
            }
            // `Type::assoc(…)` — types are upper-camel by convention.
            if qual.chars().next().is_some_and(char::is_uppercase) {
                return index
                    .by_type
                    .get(&(qual.clone(), name.clone()))
                    .cloned()
                    .unwrap_or_default();
            }
            // `crate::f(…)` at the crate root.
            if qual == "crate" {
                return index
                    .by_module
                    .get(&(caller.krate.clone(), String::new(), name.clone()))
                    .cloned()
                    .unwrap_or_default();
            }
            // `fabricsim_x::f(…)`.
            if let Some(krate) = crate_key(qual) {
                return index
                    .by_module
                    .get(&(krate, String::new(), name.clone()))
                    .cloned()
                    .unwrap_or_default();
            }
            // `use`d module: `use fabricsim_obs::summary;` + `summary::f(…)`
            // — the alias names the module, so the call appends one segment.
            for u in &pf.ast.uses {
                if u.alias == *qual {
                    let mut full = u.path.clone();
                    full.push(name.clone());
                    if let Some(ids) = resolve_use_path(&full, caller, index) {
                        return ids;
                    }
                }
            }
            // `module::f(…)` — same crate, module named `qual` (any depth:
            // match by last segment).
            let mut out = Vec::new();
            for ((k, m, n), ids) in &index.by_module {
                if *k == caller.krate && *n == *name && m.rsplit("::").next() == Some(qual) {
                    out.extend_from_slice(ids);
                }
            }
            out
        }
        longer => {
            // Fully qualified: map the head, match the tail.
            let name = longer[longer.len() - 1].clone();
            let head = &longer[0];
            let (krate, mods): (String, &[String]) = if head == "crate" || head == "self" {
                (caller.krate.clone(), &longer[1..longer.len() - 1])
            } else if let Some(k) = crate_key(head) {
                (k, &longer[1..longer.len() - 1])
            } else if head == "std" || head == "core" || head == "alloc" {
                return Vec::new();
            } else {
                // `use`d module head: expand the alias, then retry.
                for u in &pf.ast.uses {
                    if u.alias == *head {
                        let mut full = u.path.clone();
                        full.extend_from_slice(&longer[1..]);
                        if let Some(ids) = resolve_use_path(&full, caller, index) {
                            return ids;
                        }
                    }
                }
                (caller.krate.clone(), &longer[..longer.len() - 1])
            };
            // `a::b::Type::assoc` — tail segment before the name may be a
            // type.
            if let Some(last_mod) = mods.last() {
                if last_mod.chars().next().is_some_and(char::is_uppercase) {
                    return index
                        .by_type
                        .get(&(last_mod.clone(), name.clone()))
                        .cloned()
                        .unwrap_or_default();
                }
            }
            index
                .by_module
                .get(&(krate, mods.join("::"), name))
                .cloned()
                .unwrap_or_default()
        }
    }
}

/// Resolves an imported path (from `use`) to symbol candidates; `None` when
/// the import is external (std, …) so the caller can keep searching.
fn resolve_use_path(path: &[String], caller: &Symbol, index: &Index) -> Option<Vec<usize>> {
    if path.is_empty() {
        return None;
    }
    let head = &path[0];
    if head == "std" || head == "core" || head == "alloc" {
        return Some(Vec::new()); // definitely external — no candidates
    }
    let (krate, rest): (String, &[String]) = if head == "crate" || head == "self" {
        (caller.krate.clone(), &path[1..])
    } else if let Some(k) = crate_key(head) {
        (k, &path[1..])
    } else {
        return None;
    };
    if rest.is_empty() {
        return None;
    }
    let name = rest[rest.len() - 1].clone();
    let mods = &rest[..rest.len() - 1];
    index
        .by_module
        .get(&(krate, mods.join("::"), name))
        .cloned()
}

/// Convenience for tests and fixtures: parse `(rel_path, source)` pairs into
/// [`ParsedFile`]s using the engine's classifier.
#[must_use]
pub fn parse_sources(sources: &[(&str, &str)]) -> Vec<ParsedFile> {
    let mut out = Vec::new();
    for (rel, src) in sources {
        let Some(ctx) = crate::engine::classify(rel) else {
            continue;
        };
        let tokens = crate::tokenizer::tokenize(src);
        let ast = crate::parse::parse(&tokens);
        let allows = crate::allow::collect_allows(&tokens);
        out.push(ParsedFile {
            ctx,
            tokens,
            ast,
            allows,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(sources: &[(&str, &str)]) -> (Vec<ParsedFile>, SymbolGraph) {
        let files = parse_sources(sources);
        let g = SymbolGraph::build(&files);
        (files, g)
    }

    fn id_of(g: &SymbolGraph, name: &str) -> usize {
        g.symbols
            .iter()
            .position(|s| s.name == name)
            .unwrap_or_else(|| panic!("symbol {name} not in graph"))
    }

    #[test]
    fn same_module_and_cross_module_resolution() {
        let (_f, g) = graph(&[
            (
                "crates/core/src/sim.rs",
                "pub fn run() { helper(); util::deep(); }\nfn helper() {}\n",
            ),
            ("crates/core/src/util.rs", "pub fn deep() {}\n"),
        ]);
        let run = id_of(&g, "run");
        let helper = id_of(&g, "helper");
        let deep = id_of(&g, "deep");
        let tos: Vec<usize> = g.callees[run].iter().map(|e| e.to).collect();
        assert!(tos.contains(&helper));
        assert!(tos.contains(&deep));
        assert_eq!(g.callers[helper], vec![run]);
    }

    #[test]
    fn use_aware_cross_crate_resolution() {
        let (_f, g) = graph(&[
            (
                "crates/core/src/sim.rs",
                "use fabricsim_types::codec::decode;\npub fn run() { decode(); }\n",
            ),
            ("crates/types/src/codec.rs", "pub fn decode() {}\n"),
        ]);
        let run = id_of(&g, "run");
        let decode = id_of(&g, "decode");
        assert!(g.callees[run].iter().any(|e| e.to == decode));
        // The edge carries the call-site position, not the decl position.
        let edge = g.callees[run]
            .iter()
            .find(|e| e.to == decode)
            .expect("edge");
        assert_eq!(edge.line, 2);
    }

    #[test]
    fn method_resolution_prefers_enclosing_impl() {
        let (_f, g) = graph(&[(
            "crates/core/src/sim.rs",
            "struct A;\nimpl A {\n    fn step(&self) {}\n    pub fn go(&self) { self.step(); }\n}\nstruct B;\nimpl B {\n    fn step(&self) {}\n}\n",
        )]);
        let go = id_of(&g, "go");
        let a_step = g
            .symbols
            .iter()
            .position(|s| s.name == "step" && s.self_ty.as_deref() == Some("A"))
            .expect("A::step");
        let tos: Vec<usize> = g.callees[go].iter().map(|e| e.to).collect();
        assert_eq!(tos, vec![a_step], "self.step() must not edge to B::step");
    }

    #[test]
    fn unknown_receiver_methods_resolve_conservatively() {
        let (_f, g) = graph(&[(
            "crates/core/src/sim.rs",
            "struct A;\nimpl A {\n    fn feed(&self) {}\n}\npub fn run(x: &A) { x.feed(); }\n",
        )]);
        let run = id_of(&g, "run");
        let feed = id_of(&g, "feed");
        assert!(g.callees[run].iter().any(|e| e.to == feed));
    }

    #[test]
    fn type_assoc_calls_resolve_exactly() {
        let (_f, g) = graph(&[(
            "crates/core/src/sim.rs",
            "struct A;\nimpl A {\n    fn new() {}\n}\nstruct B;\nimpl B {\n    fn new() {}\n}\npub fn run() { A::new(); }\n",
        )]);
        let run = id_of(&g, "run");
        let a_new = g
            .symbols
            .iter()
            .position(|s| s.name == "new" && s.self_ty.as_deref() == Some("A"))
            .expect("A::new");
        let tos: Vec<usize> = g.callees[run].iter().map(|e| e.to).collect();
        assert_eq!(tos, vec![a_new]);
    }

    #[test]
    fn public_sim_critical_set_excludes_tests_and_non_sim_crates() {
        let (_f, g) = graph(&[
            (
                "crates/core/src/sim.rs",
                "pub fn api() {}\nfn private() {}\n",
            ),
            ("crates/obs/src/span.rs", "pub fn obs_api() {}\n"),
            (
                "crates/core/src/x.rs",
                "#[cfg(test)]\nmod tests {\n    pub fn test_pub() {}\n}\n",
            ),
        ]);
        let sinks = g.public_sim_critical();
        let names: Vec<&str> = sinks.iter().map(|&i| g.symbols[i].name.as_str()).collect();
        assert_eq!(names, vec!["api"]);
    }

    #[test]
    fn qualified_display_path() {
        let (_f, g) = graph(&[(
            "crates/des/src/sharded.rs",
            "impl Kernel {\n    pub fn run(&mut self) {}\n}\n",
        )]);
        let run = id_of(&g, "run");
        assert_eq!(
            g.symbols[run].qualified(),
            "fabricsim_des::sharded::Kernel::run"
        );
    }
}
