//! The rule catalogue: token-pattern checks over one file.
//!
//! Each rule is a pure function from `(tokens, file context)` to
//! diagnostics. Rules never see comments (the scanner filters them out) and
//! never see anything inside string/char literals (the tokenizer already
//! atomized those), so `"Instant::now"` in a log message or `HashMap` in a
//! doc comment can never fire. Test code — files under `tests/`, `benches/`,
//! and `#[cfg(test)]` regions — is exempt from every code rule.

use crate::diag::{Diagnostic, RuleId};
use crate::tokenizer::{Token, TokenKind};

/// What kind of source file is being linted (decides rule applicability).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `crates/*/src/**` (except `src/bin/`): library code, all rules apply.
    Lib,
    /// `crates/*/src/bin/**`: binary code — everything but the unwrap rule.
    Bin,
    /// `crates/*/tests/**`, `crates/*/benches/**`, `tests/tests/**`.
    Test,
    /// `examples/**`.
    Example,
}

/// Everything the rules need to know about the file being linted.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Short crate name (`core`, `obs`, …); `None` for scratch files passed
    /// explicitly on the command line, which are linted at full strictness.
    pub crate_name: Option<String>,
    /// File kind (decides which rules run).
    pub kind: FileKind,
    /// True for `crates/*/src/lib.rs` (the forbid-unsafe rule's subject).
    pub is_crate_root: bool,
}

/// Crates whose code runs inside the simulated world: any nondeterminism
/// here changes reported phase measurements.
pub const SIM_CRITICAL_CRATES: &[&str] = &[
    "des",
    "core",
    "peer",
    "ordering",
    "ledger",
    "raft",
    "kafka",
    "chaincode",
    "policy",
    "types",
    "crypto",
];

impl FileContext {
    /// True when this file belongs to a sim-critical crate (scratch files
    /// are treated as sim-critical so ad-hoc linting is maximally strict).
    #[must_use]
    pub fn sim_critical(&self) -> bool {
        match &self.crate_name {
            Some(name) => SIM_CRITICAL_CRATES.contains(&name.as_str()),
            None => true,
        }
    }
}

/// The comment-free token view rules scan, with test regions marked.
pub struct Scanner<'a> {
    pub(crate) toks: Vec<&'a Token>,
    pub(crate) in_test: Vec<bool>,
}

impl<'a> Scanner<'a> {
    /// Builds the scanner: filters comments, then marks `#[cfg(test)]`
    /// item bodies (attribute through matching `}` or terminating `;`).
    #[must_use]
    pub fn new(tokens: &'a [Token], whole_file_is_test: bool) -> Self {
        let toks: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
        let mut in_test = vec![whole_file_is_test; toks.len()];
        let mut i = 0;
        while i < toks.len() {
            if let Some(end) = test_region_end(&toks, i) {
                for flag in in_test.iter_mut().take(end + 1).skip(i) {
                    *flag = true;
                }
                i = end + 1;
            } else {
                i += 1;
            }
        }
        Scanner { toks, in_test }
    }

    pub(crate) fn get(&self, i: usize) -> Option<&Token> {
        self.toks.get(i).copied()
    }

    pub(crate) fn ident_at(&self, i: usize, s: &str) -> bool {
        self.get(i).is_some_and(|t| t.is_ident(s))
    }

    pub(crate) fn punct_at(&self, i: usize, s: &str) -> bool {
        self.get(i).is_some_and(|t| t.is_punct(s))
    }

    fn diag(&self, i: usize, rule: RuleId, ctx: &FileContext, message: String) -> Diagnostic {
        let t = self.toks[i];
        Diagnostic {
            file: ctx.rel_path.clone(),
            line: t.line,
            col: t.col,
            rule,
            message,
            suggestion: suggestion_for(rule),
            notes: Vec::new(),
        }
    }
}

/// If `toks[i]` opens a `#[cfg(test)]`-gated item, returns the index of the
/// token that ends the item (matching `}` or `;`).
fn test_region_end(toks: &[&Token], i: usize) -> Option<usize> {
    // `#` `[` `cfg` `(` … `test` … `)` `]`
    if !(toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("["))) {
        return None;
    }
    if !toks.get(i + 2).is_some_and(|t| t.is_ident("cfg")) {
        return None;
    }
    let mut j = i + 3;
    if !toks.get(j).is_some_and(|t| t.is_punct("(")) {
        return None;
    }
    let mut depth = 0usize;
    let mut saw_test = false;
    loop {
        let t = toks.get(j)?;
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_ident("test") {
            saw_test = true;
        }
        j += 1;
    }
    if !saw_test || !toks.get(j + 1).is_some_and(|t| t.is_punct("]")) {
        return None;
    }
    j += 2;
    // Skip any further attributes on the same item.
    while toks.get(j).is_some_and(|t| t.is_punct("#"))
        && toks.get(j + 1).is_some_and(|t| t.is_punct("["))
    {
        let mut brackets = 0usize;
        loop {
            let t = toks.get(j)?;
            if t.is_punct("[") {
                brackets += 1;
            } else if t.is_punct("]") {
                brackets -= 1;
                if brackets == 0 {
                    break;
                }
            }
            j += 1;
        }
        j += 1;
    }
    // The item body: everything until the matching `}`; or a `;` for
    // body-less items (`#[cfg(test)] mod tests;`, `use` declarations). A `;`
    // inside brackets (`fn f() -> [u8; 3]`) does not end the item.
    let mut braces = 0usize;
    let mut brackets = 0usize;
    loop {
        let t = toks.get(j)?;
        if t.is_punct("{") {
            braces += 1;
        } else if t.is_punct("}") {
            braces -= 1;
            if braces == 0 {
                return Some(j);
            }
        } else if t.is_punct("[") {
            brackets += 1;
        } else if t.is_punct("]") {
            brackets = brackets.saturating_sub(1);
        } else if t.is_punct(";") && braces == 0 && brackets == 0 {
            return Some(j);
        }
        j += 1;
    }
}

pub(crate) fn suggestion_for(rule: RuleId) -> Option<String> {
    let s = match rule {
        RuleId::NoWallClock => {
            "use fabricsim_des::SimTime for simulated time, or route real time through the \
             audited fabricsim_obs::WallClock"
        }
        RuleId::NoHashmapIteration => {
            "switch the container to BTreeMap/BTreeSet, or collect and sort the keys before \
             iterating; lint:allow only with a proof the order cannot escape"
        }
        RuleId::NoFloatEq => {
            "compare with an epsilon ((a - b).abs() < EPS), re-express in integers, or compare \
             IEEE-754 bits explicitly via to_bits()"
        }
        RuleId::NoUnwrapInLib => {
            "propagate the error (`?`, Result return), use unwrap_or/_else/_default, or \
             lint:allow with a proof the invariant holds"
        }
        RuleId::ForbidUnsafePresent => "add `#![forbid(unsafe_code)]` at the top of lib.rs",
        RuleId::NoThreadSleep => {
            "model delays as simulated time (schedule a DES event); never block the host thread"
        }
        RuleId::NoThreadIdentity => {
            "key per-shard state by shard index (passed in at spawn), never by the OS thread \
             that happens to run it; lint:allow only with a proof the identity cannot reach \
             simulation state"
        }
        RuleId::AtomicsOrderingAnnotated => {
            "justify the relaxed ordering with a `// relaxed: <why>` note on the operation \
             (preferred), a lint:allow, or use Acquire/Release/SeqCst"
        }
        RuleId::NoUnboundedSink => {
            "make the buffer a bounded ring (evict the oldest entry at capacity and count the \
             eviction), or lint:allow with a note explaining why this allocation cannot grow"
        }
        RuleId::DeterminismTaint => {
            "make the helper deterministic (BTreeMap/sorted iteration, no thread identity, \
             no pointer-to-int), or sever the call path from sim-critical code"
        }
        RuleId::PanicPath => {
            "return a typed error from the handler path instead of panicking; for truly \
             unreachable arms, lint:allow(panic-path) with the dominating invariant"
        }
        RuleId::LockOrder => {
            "pick one global acquisition order for these mutexes and restructure the \
             out-of-order site to follow it"
        }
        RuleId::RelaxedNoteOnOperation => {
            "move the `// relaxed:` note onto the line of the atomic operation it justifies"
        }
        RuleId::AllowMissingJustification | RuleId::AllowUnknownRule => return None,
    };
    Some(s.to_string())
}

/// Runs every applicable code rule for this file.
#[must_use]
pub fn run_rules(ctx: &FileContext, tokens: &[Token]) -> Vec<Diagnostic> {
    let scan = Scanner::new(tokens, ctx.kind == FileKind::Test);
    let mut diags = Vec::new();
    let non_test_code = matches!(ctx.kind, FileKind::Lib | FileKind::Bin | FileKind::Example);
    if non_test_code {
        let relaxed_notes = crate::allow::collect_relaxed_notes(tokens);
        no_wall_clock(&scan, ctx, &mut diags);
        no_float_eq(&scan, ctx, &mut diags);
        atomics_ordering_annotated(&scan, ctx, &relaxed_notes, &mut diags);
        no_unbounded_sink(&scan, ctx, &mut diags);
        if ctx.sim_critical() {
            no_thread_sleep(&scan, ctx, &mut diags);
            no_thread_identity(&scan, ctx, &mut diags);
            no_hashmap_iteration(&scan, ctx, &mut diags);
        }
    }
    if ctx.kind == FileKind::Lib {
        no_unwrap_in_lib(&scan, ctx, &mut diags);
    }
    if ctx.is_crate_root {
        forbid_unsafe_present(&scan, ctx, &mut diags);
    }
    diags.sort_by_key(|d| (d.line, d.col, d.rule));
    diags.dedup_by(|a, b| (a.line, a.col, a.rule) == (b.line, b.col, b.rule));
    diags
}

/// `Instant::now` / `SystemTime` anywhere outside tests (the single audited
/// entry point in `obs::WallClock` carries its own lint:allow).
fn no_wall_clock(scan: &Scanner<'_>, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    for i in 0..scan.toks.len() {
        if scan.in_test[i] {
            continue;
        }
        if scan.ident_at(i, "Instant") && scan.punct_at(i + 1, "::") && scan.ident_at(i + 2, "now")
        {
            out.push(scan.diag(
                i,
                RuleId::NoWallClock,
                ctx,
                "wall-clock read (`Instant::now`) in simulation code".into(),
            ));
        }
        if scan.ident_at(i, "SystemTime") {
            out.push(scan.diag(
                i,
                RuleId::NoWallClock,
                ctx,
                "`SystemTime` in simulation code".into(),
            ));
        }
    }
}

/// `thread::sleep` (or a call to a bare imported `sleep`) in sim-critical
/// crates.
fn no_thread_sleep(scan: &Scanner<'_>, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    for i in 0..scan.toks.len() {
        if scan.in_test[i] || !scan.ident_at(i, "sleep") {
            continue;
        }
        let qualified = i >= 2 && scan.ident_at(i - 2, "thread") && scan.punct_at(i - 1, "::");
        let called = scan.punct_at(i + 1, "(");
        if qualified || called {
            out.push(scan.diag(
                i,
                RuleId::NoThreadSleep,
                ctx,
                "`thread::sleep` blocks the host thread inside the simulated world".into(),
            ));
        }
    }
}

/// `thread::current()` or the `ThreadId` type in sim-critical crates. The
/// sharded kernel multiplexes shards onto an arbitrary number of OS threads;
/// anything keyed on thread identity would make results depend on the worker
/// count, breaking the byte-identical-at-any-worker-count contract.
fn no_thread_identity(scan: &Scanner<'_>, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    for i in 0..scan.toks.len() {
        if scan.in_test[i] {
            continue;
        }
        if scan.ident_at(i, "current")
            && i >= 2
            && scan.ident_at(i - 2, "thread")
            && scan.punct_at(i - 1, "::")
            && scan.punct_at(i + 1, "(")
        {
            out.push(scan.diag(
                i,
                RuleId::NoThreadIdentity,
                ctx,
                "`thread::current()` exposes OS-thread identity to simulation code".into(),
            ));
        }
        if scan.ident_at(i, "ThreadId") {
            out.push(scan.diag(
                i,
                RuleId::NoThreadIdentity,
                ctx,
                "`ThreadId` in simulation code keys state on the host scheduler".into(),
            ));
        }
    }
}

/// Methods whose results depend on `HashMap`/`HashSet` iteration order.
const ITERATION_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "retain_mut",
];

/// Flags iteration over locals/fields/params whose declared type (or
/// constructor) is `HashMap`/`HashSet`, plus direct `for … in map` loops.
fn no_hashmap_iteration(scan: &Scanner<'_>, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    for (i, message) in hashmap_iteration_sites(scan) {
        out.push(scan.diag(i, RuleId::NoHashmapIteration, ctx, message));
    }
}

/// The shared detection behind [`no_hashmap_iteration`], also used by the
/// determinism-taint pass to seed sources in non-sim-critical crates.
/// Returns `(scanner token index, message)` for each non-test site.
#[allow(clippy::too_many_lines)] // two passes over two binding shapes; splitting hurts
pub(crate) fn hashmap_iteration_sites(scan: &Scanner<'_>) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    // Pass 1: names bound to hash-ordered containers anywhere in the file.
    let mut hash_names: Vec<&str> = Vec::new();
    for i in 0..scan.toks.len() {
        let Some(tok) = scan.get(i) else { break };
        if tok.kind != TokenKind::Ident {
            continue;
        }
        // `name: [&][mut] [std::collections::] HashMap<…>` — covers let
        // annotations, struct fields, and fn parameters.
        if scan.punct_at(i + 1, ":") {
            let mut j = i + 2;
            let limit = j + 8;
            while j < limit {
                match scan.get(j) {
                    Some(t)
                        if t.is_punct("&")
                            || t.is_punct("::")
                            || t.kind == TokenKind::Lifetime
                            || t.is_ident("mut")
                            || t.is_ident("std")
                            || t.is_ident("collections") =>
                    {
                        j += 1;
                    }
                    Some(t) if t.is_ident("HashMap") || t.is_ident("HashSet") => {
                        hash_names.push(&tok.text);
                        break;
                    }
                    _ => break,
                }
            }
        }
        // `let [mut] name = HashMap::new()` / `HashSet::with_capacity(…)`.
        if tok.is_ident("let") {
            let name_at = if scan.ident_at(i + 1, "mut") {
                i + 2
            } else {
                i + 1
            };
            if let Some(name) = scan.get(name_at) {
                if name.kind == TokenKind::Ident
                    && scan.punct_at(name_at + 1, "=")
                    && (scan.ident_at(name_at + 2, "HashMap")
                        || scan.ident_at(name_at + 2, "HashSet"))
                    && scan.punct_at(name_at + 3, "::")
                {
                    hash_names.push(&name.text);
                }
            }
        }
    }
    if hash_names.is_empty() {
        return out;
    }
    let is_hash = |t: &Token| t.kind == TokenKind::Ident && hash_names.contains(&t.text.as_str());

    // Pass 2a: `name.iter()`-family calls.
    for i in 0..scan.toks.len() {
        if scan.in_test[i] {
            continue;
        }
        let Some(tok) = scan.get(i) else { break };
        if is_hash(tok) && scan.punct_at(i + 1, ".") {
            if let Some(m) = scan.get(i + 2) {
                if m.kind == TokenKind::Ident
                    && ITERATION_METHODS.contains(&m.text.as_str())
                    && scan.punct_at(i + 3, "(")
                {
                    out.push((
                        i,
                        format!(
                            "`{}.{}()` iterates a hash-ordered container (RandomState makes the \
                             order differ per process)",
                            tok.text, m.text
                        ),
                    ));
                }
            }
        }
    }

    // Pass 2b: `for … in [&][mut] name {`.
    for i in 0..scan.toks.len() {
        if scan.in_test[i] || !scan.ident_at(i, "for") {
            continue;
        }
        // Find `in` within the loop header, then the block opener.
        let mut j = i + 1;
        let header_limit = j + 24;
        while j < header_limit && !scan.punct_at(j, "{") {
            if scan.ident_at(j, "in") {
                let mut k = j + 1;
                while k < header_limit {
                    match scan.get(k) {
                        Some(t) if t.is_punct("&") || t.is_ident("mut") => k += 1,
                        Some(t) if is_hash(t) && scan.punct_at(k + 1, "{") => {
                            out.push((
                                k,
                                format!(
                                    "`for … in {}` iterates a hash-ordered container \
                                     (RandomState makes the order differ per process)",
                                    t.text
                                ),
                            ));
                            break;
                        }
                        _ => break,
                    }
                }
                break;
            }
            j += 1;
        }
    }
    out
}

/// `==`/`!=` with a float operand (literal, `as f64/f32` cast result, or an
/// `f64::`/`f32::` associated constant).
fn no_float_eq(scan: &Scanner<'_>, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    for i in 0..scan.toks.len() {
        if scan.in_test[i] {
            continue;
        }
        let Some(op) = scan.get(i) else { break };
        if !(op.is_punct("==") || op.is_punct("!=")) {
            continue;
        }
        let prev_floaty = i >= 1
            && scan.get(i - 1).is_some_and(|t| {
                t.kind == TokenKind::Float || t.is_ident("f64") || t.is_ident("f32")
            });
        let next_floaty = scan.get(i + 1).is_some_and(|t| t.kind == TokenKind::Float)
            || (scan.punct_at(i + 1, "-")
                && scan.get(i + 2).is_some_and(|t| t.kind == TokenKind::Float))
            || ((scan.ident_at(i + 1, "f64") || scan.ident_at(i + 1, "f32"))
                && scan.punct_at(i + 2, "::"));
        if prev_floaty || next_floaty {
            out.push(scan.diag(
                i,
                RuleId::NoFloatEq,
                ctx,
                format!("`{}` compares floats for exact equality", op.text),
            ));
        }
    }
}

/// `.unwrap()` / `.expect(` in non-test library code.
fn no_unwrap_in_lib(scan: &Scanner<'_>, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    for i in 1..scan.toks.len() {
        if scan.in_test[i] || !scan.punct_at(i - 1, ".") {
            continue;
        }
        if scan.ident_at(i, "unwrap") && scan.punct_at(i + 1, "(") && scan.punct_at(i + 2, ")") {
            out.push(scan.diag(
                i,
                RuleId::NoUnwrapInLib,
                ctx,
                "`.unwrap()` in library code panics on the error path".into(),
            ));
        }
        // `self.expect(…)` is a domain method (the JSON and policy parsers
        // both expose a `fn expect` that returns `Result`), not
        // `Option/Result::expect`; only flag calls on other receivers.
        if scan.ident_at(i, "expect")
            && scan.punct_at(i + 1, "(")
            && !(i >= 2 && scan.ident_at(i - 2, "self"))
        {
            out.push(scan.diag(
                i,
                RuleId::NoUnwrapInLib,
                ctx,
                "`.expect(…)` in library code panics on the error path".into(),
            ));
        }
    }
}

/// Growable-buffer constructors in *sink modules* (any file whose name
/// contains `sink`). An event sink that buffers with a plain `Vec`/`VecDeque`
/// grows without bound under load — every sink buffer must be a bounded ring
/// that evicts and counts, or carry an audited `lint:allow` note. `Vec::from`
/// is deliberately not matched: converting a ring to a `Vec` on drain is a
/// one-shot allocation sized by the already-bounded ring.
fn no_unbounded_sink(scan: &Scanner<'_>, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let file_name = ctx.rel_path.rsplit('/').next().unwrap_or(&ctx.rel_path);
    if !file_name.contains("sink") {
        return;
    }
    for i in 0..scan.toks.len() {
        if scan.in_test[i] {
            continue;
        }
        let container = if scan.ident_at(i, "Vec") {
            "Vec"
        } else if scan.ident_at(i, "VecDeque") {
            "VecDeque"
        } else {
            continue;
        };
        if !scan.punct_at(i + 1, "::") {
            continue;
        }
        let ctor = match scan.get(i + 2) {
            Some(t) if t.is_ident("new") => "new",
            Some(t) if t.is_ident("with_capacity") => "with_capacity",
            _ => continue,
        };
        out.push(scan.diag(
            i,
            RuleId::NoUnboundedSink,
            ctx,
            format!(
                "`{container}::{ctor}` allocates a growable buffer in a sink module; sink \
                 buffers must be bounded rings with an eviction counter"
            ),
        ));
    }
}

/// Crate roots must keep `#![forbid(unsafe_code)]`.
fn forbid_unsafe_present(scan: &Scanner<'_>, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let want = ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"];
    let found = (0..scan.toks.len()).any(|i| {
        want.iter()
            .enumerate()
            .all(|(k, w)| scan.get(i + k).is_some_and(|t| t.text == *w))
    });
    if !found {
        out.push(Diagnostic {
            file: ctx.rel_path.clone(),
            line: 1,
            col: 1,
            rule: RuleId::ForbidUnsafePresent,
            message: "crate root does not `#![forbid(unsafe_code)]`".into(),
            suggestion: suggestion_for(RuleId::ForbidUnsafePresent),
            notes: Vec::new(),
        });
    }
}

/// `Ordering::Relaxed` must carry a written justification: either a
/// `// relaxed: <why>` note binding within two lines above the use (the
/// preferred, first-class form — [`crate::taint`] additionally verifies it
/// sits on the operation itself) or a justified `lint:allow`.
fn atomics_ordering_annotated(
    scan: &Scanner<'_>,
    ctx: &FileContext,
    notes: &[crate::allow::RelaxedNote],
    out: &mut Vec<Diagnostic>,
) {
    for i in 0..scan.toks.len() {
        if scan.in_test[i] {
            continue;
        }
        if scan.ident_at(i, "Ordering")
            && scan.punct_at(i + 1, "::")
            && scan.ident_at(i + 2, "Relaxed")
        {
            let line = scan.toks[i + 2].line;
            let justified = notes
                .iter()
                .any(|n| n.target_line.is_some_and(|t| t <= line && t + 2 >= line));
            if !justified {
                out.push(scan.diag(
                    i + 2,
                    RuleId::AtomicsOrderingAnnotated,
                    ctx,
                    "`Ordering::Relaxed` without a written justification".into(),
                ));
            }
        }
    }
}
