//! The `lint:allow` escape hatch.
//!
//! A violation is suppressed by writing, on the same line or on the comment
//! line(s) directly above the offending code:
//!
//! ```text
//! // lint:allow(no-unwrap-in-lib) -- index proven in bounds two lines up
//! let x = xs.get(i).unwrap();
//! ```
//!
//! Contract:
//! * the justification after `--` is **mandatory** — an allow without one is
//!   itself a violation (`allow-missing-justification`);
//! * the rule id must exist (`allow-unknown-rule`);
//! * several rules can share one annotation: `lint:allow(rule-a, rule-b)`;
//! * a trailing comment binds to its own line; a standalone comment line
//!   binds to the next line that holds any code, so a stack of annotations
//!   above one statement all apply to it.

use crate::diag::{Diagnostic, RuleId};
use crate::tokenizer::Token;

/// One parsed `lint:allow` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rules this annotation suppresses.
    pub rules: Vec<RuleId>,
    /// Rule names that did not parse (each is reported).
    pub unknown: Vec<String>,
    /// True when a non-empty `-- justification` followed the rule list.
    pub justified: bool,
    /// Line of the comment itself.
    pub line: u32,
    /// Column of the comment itself.
    pub col: u32,
    /// The code line the annotation applies to (None at EOF).
    pub target_line: Option<u32>,
}

/// Extracts every `lint:allow` annotation from a token stream (comments
/// included), resolving which code line each one binds to.
#[must_use]
pub fn collect_allows(tokens: &[Token]) -> Vec<Allow> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if !tok.is_comment() || is_doc_comment(&tok.text) {
            // Doc comments may *mention* the syntax without being an
            // annotation; a real allow is always a plain `//` or `/* */`.
            continue;
        }
        let Some(spec) = parse_allow_comment(&tok.text) else {
            continue;
        };
        // Trailing comment (code earlier on the same line) → its own line;
        // standalone comment → the next line holding a non-comment token.
        let trailing = i > 0 && tokens[i - 1].line == tok.line && !tokens[i - 1].is_comment();
        let target_line = if trailing {
            Some(tok.line)
        } else {
            tokens[i + 1..]
                .iter()
                .find(|t| !t.is_comment())
                .map(|t| t.line)
        };
        let mut rules = Vec::new();
        let mut unknown = Vec::new();
        for name in spec.names {
            match RuleId::parse(&name) {
                Some(r) => rules.push(r),
                None => unknown.push(name),
            }
        }
        out.push(Allow {
            rules,
            unknown,
            justified: spec.justified,
            line: tok.line,
            col: tok.col,
            target_line,
        });
    }
    out
}

/// `///`, `//!`, `/**`, `/*!` are documentation, not annotations.
fn is_doc_comment(text: &str) -> bool {
    text.starts_with("///")
        || text.starts_with("//!")
        || text.starts_with("/**")
        || text.starts_with("/*!")
}

struct AllowSpec {
    names: Vec<String>,
    justified: bool,
}

/// Parses one comment body; `None` when it contains no `lint:allow(`.
fn parse_allow_comment(comment: &str) -> Option<AllowSpec> {
    let at = comment.find("lint:allow(")?;
    let rest = &comment[at + "lint:allow(".len()..];
    let close = rest.find(')')?;
    let names = rest[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let after = &rest[close + 1..];
    // A justification must be non-empty and must not be `--fix` scaffolding:
    // a `FIXME`-prefixed note marks the allow as still awaiting a real
    // justification, so it cannot launder the audit.
    let justified = after
        .trim_start()
        .strip_prefix("--")
        .is_some_and(|j| !j.trim().is_empty() && !j.trim().starts_with("FIXME"));
    Some(AllowSpec { names, justified })
}

/// The meta-diagnostics an annotation itself can raise.
#[must_use]
pub fn allow_diagnostics(file: &str, allows: &[Allow]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for a in allows {
        if !a.justified {
            out.push(Diagnostic {
                file: file.to_string(),
                line: a.line,
                col: a.col,
                rule: RuleId::AllowMissingJustification,
                message: "lint:allow without a `-- <justification>` suffix".into(),
                suggestion: Some(
                    "write `// lint:allow(<rule>) -- <why this site is sound>`".into(),
                ),
                notes: Vec::new(),
            });
        }
        for name in &a.unknown {
            let valid: Vec<&str> = RuleId::ALL.iter().map(|r| r.as_str()).collect();
            out.push(Diagnostic {
                file: file.to_string(),
                line: a.line,
                col: a.col,
                rule: RuleId::AllowUnknownRule,
                message: format!(
                    "lint:allow names unknown rule {name:?}; valid rules are: {}",
                    valid.join(", ")
                ),
                suggestion: Some("run `fabricsim-lint --list-rules` for the catalogue".into()),
                notes: Vec::new(),
            });
        }
    }
    out
}

/// One `// relaxed: <why>` note — the first-class annotation for
/// `Ordering::Relaxed` sites (not a suppression; not counted as one).
#[derive(Debug, Clone)]
pub struct RelaxedNote {
    /// Line of the comment itself.
    pub line: u32,
    /// The code line the note applies to (same binding rules as allows).
    pub target_line: Option<u32>,
    /// The justification text after the colon.
    pub text: String,
}

/// Extracts every `// relaxed:` note from a token stream. The note must
/// carry non-empty text after the colon to count.
#[must_use]
pub fn collect_relaxed_notes(tokens: &[Token]) -> Vec<RelaxedNote> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if !tok.is_comment() || is_doc_comment(&tok.text) {
            continue;
        }
        let body = tok
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_start();
        let Some(rest) = body.strip_prefix("relaxed:") else {
            continue;
        };
        let text = rest.trim_end_matches("*/").trim().to_string();
        if text.is_empty() {
            continue;
        }
        let trailing = i > 0 && tokens[i - 1].line == tok.line && !tokens[i - 1].is_comment();
        let target_line = if trailing {
            Some(tok.line)
        } else {
            tokens[i + 1..]
                .iter()
                .find(|t| !t.is_comment())
                .map(|t| t.line)
        };
        out.push(RelaxedNote {
            line: tok.line,
            target_line,
            text,
        });
    }
    out
}

/// True when `diag` is suppressed by a justified allow on its line.
#[must_use]
pub fn is_suppressed(diag: &Diagnostic, allows: &[Allow]) -> bool {
    diag.rule.suppressible()
        && allows.iter().any(|a| {
            a.justified && a.target_line == Some(diag.line) && a.rules.contains(&diag.rule)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn allows(src: &str) -> Vec<Allow> {
        collect_allows(&tokenize(src))
    }

    #[test]
    fn trailing_allow_binds_to_its_own_line() {
        let a = allows("let x = 1; // lint:allow(no-float-eq) -- test fixture\nlet y = 2;");
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].target_line, Some(1));
        assert!(a[0].justified);
        assert_eq!(a[0].rules, vec![RuleId::NoFloatEq]);
    }

    #[test]
    fn standalone_allow_binds_to_next_code_line() {
        let a = allows("// lint:allow(no-unwrap-in-lib) -- proven\n// more prose\nlet x = 1;");
        assert_eq!(a[0].target_line, Some(3));
    }

    #[test]
    fn stacked_allows_all_bind_to_the_statement() {
        let src = "// lint:allow(no-float-eq) -- a\n// lint:allow(no-unwrap-in-lib) -- b\nf();";
        let a = allows(src);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].target_line, Some(3));
        assert_eq!(a[1].target_line, Some(3));
    }

    #[test]
    fn multi_rule_and_unknown_rules() {
        let a = allows("// lint:allow(no-float-eq, no-such-thing) -- why\nx();");
        assert_eq!(a[0].rules, vec![RuleId::NoFloatEq]);
        assert_eq!(a[0].unknown, vec!["no-such-thing".to_string()]);
        let diags = allow_diagnostics("f.rs", &a);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::AllowUnknownRule);
    }

    #[test]
    fn missing_justification_is_flagged() {
        for src in [
            "// lint:allow(no-float-eq)\nx();",
            "// lint:allow(no-float-eq) --\nx();",
            "// lint:allow(no-float-eq) --   \nx();",
        ] {
            let a = allows(src);
            assert!(!a[0].justified, "{src:?}");
            let diags = allow_diagnostics("f.rs", &a);
            assert_eq!(diags[0].rule, RuleId::AllowMissingJustification, "{src:?}");
        }
    }

    #[test]
    fn suppression_requires_matching_line_rule_and_justification() {
        let a = allows("// lint:allow(no-float-eq) -- why\nx();");
        let mut d = Diagnostic {
            file: "f.rs".into(),
            line: 2,
            col: 1,
            rule: RuleId::NoFloatEq,
            message: String::new(),
            suggestion: None,
            notes: Vec::new(),
        };
        assert!(is_suppressed(&d, &a));
        d.line = 3;
        assert!(!is_suppressed(&d, &a));
        d.line = 2;
        d.rule = RuleId::NoUnwrapInLib;
        assert!(!is_suppressed(&d, &a));
    }

    #[test]
    fn allow_in_string_literal_is_ignored() {
        let a = allows("let s = \"// lint:allow(no-float-eq) -- nope\";");
        assert!(a.is_empty());
    }
}
