#![forbid(unsafe_code)]
//! `fabricsim-lint` — repo-local determinism & soundness static analysis.
//!
//! The paper reproduction's whole measurement story rests on the simulator
//! being deterministic *by construction*: identical seeds must give
//! bit-identical reports, or the perf gate (`BENCH_fabricsim.json`) and the
//! pooled-VSCC golden tests measure noise instead of code. Nothing in the
//! compiler enforces that, so this crate does: a comment/string/char-aware
//! tokenizer ([`tokenizer`]) feeds a rule engine ([`rules`], [`engine`])
//! that walks every workspace source file and reports typed diagnostics
//! (`file:line:col`, rule id, message, suggestion) in human or `--json`
//! form.
//!
//! The rule catalogue ([`RuleId`]) bans wall-clock reads, hash-order
//! iteration, float equality, library `unwrap()`, `thread::sleep`, missing
//! `#![forbid(unsafe_code)]`, and unjustified `Ordering::Relaxed`. The only
//! escape hatch is an *audited* one — see [`allow`]: every suppression must
//! name the rule and carry a written justification, and the annotations are
//! themselves linted.
//!
//! Run it as `cargo run -p fabricsim-lint`, or `fabricsim lint` from the
//! main CLI. Exit codes: 0 clean, 1 violations, 2 usage/IO error.

pub mod allow;
pub mod diag;
pub mod engine;
pub mod rules;
pub mod tokenizer;

pub use diag::{Diagnostic, LintReport, RuleId};
pub use engine::{classify, lint_paths, lint_source};
pub use rules::{FileContext, FileKind, SIM_CRITICAL_CRATES};

use std::io::Write as _;
use std::path::PathBuf;

/// Prints to stdout, ignoring `EPIPE` so `fabricsim lint | head` exits
/// cleanly instead of panicking like `println!` would.
fn out(text: &str) {
    let _ = std::io::stdout().write_all(text.as_bytes());
}

/// Command-line driver shared by the `fabricsim-lint` binary and the
/// `fabricsim lint` subcommand. Returns the process exit code.
#[must_use]
pub fn cli_run(args: &[String]) -> i32 {
    let mut json = false;
    let mut json_out: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                json = true;
                // `--json lint-report.json` writes the report to that file;
                // a bare `--json` prints it to stdout.
                let is_json = |n: &str| {
                    std::path::Path::new(n)
                        .extension()
                        .is_some_and(|e| e.eq_ignore_ascii_case("json"))
                };
                if it.peek().is_some_and(|n| is_json(n)) {
                    json_out = it.next().cloned();
                }
            }
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--list-rules" => {
                for rule in RuleId::ALL {
                    out(&format!("{:28} {}\n", rule.as_str(), rule.description()));
                }
                return 0;
            }
            "--help" | "-h" => return usage(),
            flag if flag.starts_with('-') => {
                eprintln!("fabricsim-lint: unknown flag {flag:?}");
                return usage();
            }
            path => paths.push(path.to_string()),
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let report = match lint_paths(&root, &paths) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fabricsim-lint: {e}");
            return 2;
        }
    };
    if json {
        let body = report.to_json();
        match &json_out {
            Some(file) => {
                if let Err(e) = std::fs::write(file, &body) {
                    eprintln!("fabricsim-lint: cannot write {file}: {e}");
                    return 2;
                }
                // Keep the human summary visible next to the artifact path.
                eprint!("{}", report.to_human());
                eprintln!("fabricsim-lint: JSON report written to {file}");
            }
            None => out(&body),
        }
    } else {
        out(&report.to_human());
    }
    i32::from(!report.is_clean())
}

fn usage() -> i32 {
    eprintln!("usage: fabricsim-lint [--json [FILE.json]] [--root DIR] [--list-rules] [PATHS…]");
    eprintln!();
    eprintln!("Lints the fabricsim workspace (or just PATHS) for determinism and");
    eprintln!("soundness violations. Exit codes: 0 clean, 1 violations, 2 error.");
    2
}
