#![forbid(unsafe_code)]
//! `fabricsim-lint` — repo-local determinism & soundness static analysis.
//!
//! The paper reproduction's whole measurement story rests on the simulator
//! being deterministic *by construction*: identical seeds must give
//! bit-identical reports, or the perf gate (`BENCH_fabricsim.json`) and the
//! pooled-VSCC golden tests measure noise instead of code. Nothing in the
//! compiler enforces that, so this crate does: a comment/string/char-aware
//! tokenizer ([`tokenizer`]) feeds a rule engine ([`rules`], [`engine`])
//! that walks every workspace source file and reports typed diagnostics
//! (`file:line:col`, rule id, message, suggestion) in human or `--json`
//! form.
//!
//! The rule catalogue ([`RuleId`]) bans wall-clock reads, hash-order
//! iteration, float equality, library `unwrap()`, `thread::sleep`, missing
//! `#![forbid(unsafe_code)]`, and unjustified `Ordering::Relaxed`. The only
//! escape hatch is an *audited* one — see [`allow`]: every suppression must
//! name the rule and carry a written justification, and the annotations are
//! themselves linted.
//!
//! Run it as `cargo run -p fabricsim-lint`, or `fabricsim lint` from the
//! main CLI. Exit codes: 0 clean, 1 violations, 2 usage/IO error.

pub mod allow;
pub mod diag;
pub mod engine;
pub mod fix;
pub mod parse;
pub mod rules;
pub mod sarif;
pub mod symgraph;
pub mod taint;
pub mod tokenizer;

pub use diag::{Diagnostic, LintReport, RuleId};
pub use engine::{classify, fix_paths, lint_paths, lint_source};
pub use rules::{FileContext, FileKind, SIM_CRITICAL_CRATES};

use std::fmt::Write as FmtWrite;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The suppression-ratchet file at the workspace root: the count of
/// justified `lint:allow` suppressions may only go *down*. CI fails when
/// the live count exceeds the recorded one; lowering the file is the only
/// way to "spend" a burn-down.
pub const RATCHET_FILE: &str = "lint-ratchet.txt";

/// Parses `lint-ratchet.txt`: `#` comments, then `total N` and per-rule
/// `<rule-id> N` lines. Returns the total and the per-rule map.
#[must_use]
pub fn parse_ratchet(text: &str) -> Option<(usize, std::collections::BTreeMap<String, usize>)> {
    let mut total: Option<usize> = None;
    let mut by_rule = std::collections::BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line.split_once(char::is_whitespace)?;
        let n: usize = value.trim().parse().ok()?;
        if key == "total" {
            total = Some(n);
        } else {
            by_rule.insert(key.to_string(), n);
        }
    }
    Some((total?, by_rule))
}

/// Renders the ratchet file for the current report, in the format
/// [`parse_ratchet`] reads.
#[must_use]
pub fn render_ratchet(report: &LintReport) -> String {
    let mut out = String::from(
        "# fabricsim-lint suppression ratchet.\n\
         # Counts justified `lint:allow` suppressions; may only decrease.\n\
         # Regenerate with: cargo run -p fabricsim-lint -- --write-ratchet\n",
    );
    let _ = writeln!(out, "total {}", report.suppressed);
    for (rule, n) in &report.suppressed_by_rule {
        let _ = writeln!(out, "{rule} {n}");
    }
    out
}

/// Enforces the ratchet: live suppressions must not exceed the recorded
/// count. Returns an error message when they do, `Ok(None)` when no ratchet
/// file exists, and `Ok(Some(recorded_total))` when within budget.
///
/// # Errors
/// A human-readable message naming the overrun (total or per-rule).
pub fn check_ratchet(root: &Path, report: &LintReport) -> Result<Option<usize>, String> {
    let Ok(text) = std::fs::read_to_string(root.join(RATCHET_FILE)) else {
        return Ok(None);
    };
    let Some((total, by_rule)) = parse_ratchet(&text) else {
        return Err(format!(
            "{RATCHET_FILE} is malformed; regenerate with --write-ratchet"
        ));
    };
    if report.suppressed > total {
        return Err(format!(
            "suppression count {} exceeds the ratchet ({total}); \
             remove suppressions instead of adding them",
            report.suppressed
        ));
    }
    for (rule, n) in &report.suppressed_by_rule {
        let budget = by_rule.get(rule.as_str()).copied().unwrap_or(0);
        if *n > budget {
            return Err(format!(
                "rule {rule}: {n} suppressions exceed the ratchet ({budget}); \
                 remove suppressions instead of adding them"
            ));
        }
    }
    Ok(Some(total))
}

/// Prints to stdout, ignoring `EPIPE` so `fabricsim lint | head` exits
/// cleanly instead of panicking like `println!` would.
fn out(text: &str) {
    let _ = std::io::stdout().write_all(text.as_bytes());
}

/// Command-line driver shared by the `fabricsim-lint` binary and the
/// `fabricsim lint` subcommand. Returns the process exit code.
#[must_use]
#[allow(clippy::too_many_lines)] // flat flag dispatch; splitting it obscures the flow
pub fn cli_run(args: &[String]) -> i32 {
    let mut json = false;
    let mut json_out: Option<String> = None;
    let mut sarif_out: Option<String> = None;
    let mut fix = false;
    let mut check = false;
    let mut write_ratchet = false;
    let mut root: Option<PathBuf> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fix" => fix = true,
            "--check" => check = true,
            "--write-ratchet" => write_ratchet = true,
            "--sarif" => match it.next() {
                Some(file) => sarif_out = Some(file.clone()),
                None => return usage(),
            },
            "--json" => {
                json = true;
                // `--json lint-report.json` writes the report to that file;
                // a bare `--json` prints it to stdout.
                let is_json = |n: &str| {
                    std::path::Path::new(n)
                        .extension()
                        .is_some_and(|e| e.eq_ignore_ascii_case("json"))
                };
                if it.peek().is_some_and(|n| is_json(n)) {
                    json_out = it.next().cloned();
                }
            }
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--list-rules" => {
                for rule in RuleId::ALL {
                    out(&format!("{:28} {}\n", rule.as_str(), rule.description()));
                }
                return 0;
            }
            "--help" | "-h" => return usage(),
            flag if flag.starts_with('-') => {
                eprintln!("fabricsim-lint: unknown flag {flag:?}");
                return usage();
            }
            path => paths.push(path.to_string()),
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    if check && !fix {
        eprintln!("fabricsim-lint: --check requires --fix");
        return usage();
    }
    if fix {
        // `--fix` rewrites in place; `--fix --check` only reports what WOULD
        // change and fails if anything is pending (CI keeps the tree
        // fix-clean that way).
        match engine::fix_paths(&root, &paths, !check) {
            Ok(fixes) => {
                for f in &fixes {
                    out(&format!(
                        "{}: {}:{}: {}\n",
                        if check { "would fix" } else { "fixed" },
                        f.file,
                        f.line,
                        f.what
                    ));
                }
                if check && !fixes.is_empty() {
                    eprintln!(
                        "fabricsim-lint: {} fix(es) pending; run `fabricsim lint --fix`",
                        fixes.len()
                    );
                    return 1;
                }
                if check {
                    out("fabricsim-lint: fix-clean\n");
                    return 0;
                }
                // fall through: lint the (now fixed) tree below.
            }
            Err(e) => {
                eprintln!("fabricsim-lint: {e}");
                return 2;
            }
        }
    }
    let report = match lint_paths(&root, &paths) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fabricsim-lint: {e}");
            return 2;
        }
    };
    if write_ratchet {
        let path = root.join(RATCHET_FILE);
        if let Err(e) = std::fs::write(&path, render_ratchet(&report)) {
            eprintln!("fabricsim-lint: cannot write {}: {e}", path.display());
            return 2;
        }
        eprintln!("fabricsim-lint: ratchet written to {}", path.display());
    }
    if let Some(file) = &sarif_out {
        let body = sarif::to_sarif(&report);
        // The writer is validated against its own reader on every run, so a
        // regression in either fails loudly instead of shipping bad SARIF.
        if let Err(e) =
            sarif::validate_sarif(&body).and_then(|()| sarif::round_trip(&report, &body))
        {
            eprintln!("fabricsim-lint: internal error: generated SARIF is invalid: {e}");
            return 2;
        }
        if let Err(e) = std::fs::write(file, &body) {
            eprintln!("fabricsim-lint: cannot write {file}: {e}");
            return 2;
        }
        eprintln!("fabricsim-lint: SARIF report written to {file}");
    }
    // The ratchet only applies to whole-workspace runs — a path-scoped run
    // sees a subset of the suppressions and would always pass trivially.
    if paths.is_empty() && !write_ratchet {
        if let Err(e) = check_ratchet(&root, &report) {
            eprintln!("fabricsim-lint: {e}");
            return 1;
        }
    }
    if json {
        let body = report.to_json();
        match &json_out {
            Some(file) => {
                if let Err(e) = std::fs::write(file, &body) {
                    eprintln!("fabricsim-lint: cannot write {file}: {e}");
                    return 2;
                }
                // Keep the human summary visible next to the artifact path.
                eprint!("{}", report.to_human());
                eprintln!("fabricsim-lint: JSON report written to {file}");
            }
            None => out(&body),
        }
    } else {
        out(&report.to_human());
    }
    i32::from(!report.is_clean())
}

fn usage() -> i32 {
    eprintln!("usage: fabricsim-lint [--json [FILE.json]] [--sarif FILE] [--fix [--check]]");
    eprintln!("                      [--write-ratchet] [--root DIR] [--list-rules] [PATHS…]");
    eprintln!();
    eprintln!("Lints the fabricsim workspace (or just PATHS) for determinism and");
    eprintln!("soundness violations. Exit codes: 0 clean, 1 violations, 2 error.");
    eprintln!();
    eprintln!("  --fix           apply mechanical rewrites (partial_cmp→total_cmp,");
    eprintln!("                  FIXME scaffolding for unjustified lint:allow)");
    eprintln!("  --fix --check   fail if any fix would apply; writes nothing");
    eprintln!("  --sarif FILE    also write a validated SARIF 2.1.0 report");
    eprintln!("  --write-ratchet regenerate lint-ratchet.txt from the live counts");
    2
}
