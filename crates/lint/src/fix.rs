//! `fabricsim lint --fix`: mechanical, semantics-preserving rewrites.
//!
//! Two fixes ship today:
//!
//! * `.partial_cmp(x).unwrap()` / `.partial_cmp(x).expect(…)` →
//!   `.total_cmp(x)` — the total order over floats is what every sort in
//!   this workspace wants, and it removes a panic path;
//! * unjustified `// lint:allow(<rule>)` comments gain
//!   `-- FIXME(lint): …` scaffolding so the site compiles into the audit
//!   trail. A `FIXME`-prefixed justification still counts as *unjustified*
//!   (see [`crate::allow`]), so the scaffold cannot launder the finding —
//!   it only makes the missing prose grep-able.
//!
//! `--fix --check` computes the same fixes but fails (without writing)
//! when any would apply; CI runs that mode so the tree stays fix-clean.

use crate::tokenizer::{tokenize, Token, TokenKind};

/// One applied (or applicable) fix, for reporting.
#[derive(Debug, Clone)]
pub struct Fix {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the rewrite.
    pub line: u32,
    /// Human description of what changed.
    pub what: String,
}

/// One byte-range splice.
struct Edit {
    start: usize,
    end: usize,
    replacement: String,
}

/// Byte offset of 1-based `(line, col)` (col counts characters).
fn byte_offset(line_starts: &[usize], src: &str, line: u32, col: u32) -> usize {
    let base = line_starts[(line as usize).saturating_sub(1)];
    let rest = &src[base..];
    let Some(nth) = (col as usize).checked_sub(1) else {
        return base + rest.len();
    };
    rest.char_indices()
        .nth(nth)
        .map_or(base + rest.len(), |(bi, _)| base + bi)
}

/// Computes the fixed text for one file. Returns `None` when nothing
/// applies; otherwise the new content and a description of each rewrite.
#[must_use]
pub fn fix_source(rel_path: &str, src: &str) -> Option<(String, Vec<Fix>)> {
    let tokens = tokenize(src);
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut line_starts = vec![0usize];
    for (i, b) in src.bytes().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let mut edits: Vec<Edit> = Vec::new();
    let mut fixes: Vec<Fix> = Vec::new();

    partial_cmp_fix(rel_path, src, &code, &line_starts, &mut edits, &mut fixes);
    allow_scaffold_fix(rel_path, src, &tokens, &line_starts, &mut edits, &mut fixes);

    if edits.is_empty() {
        return None;
    }
    // Apply bottom-up so earlier offsets stay valid.
    edits.sort_by_key(|e| e.start);
    let mut out = src.to_string();
    for e in edits.iter().rev() {
        out.replace_range(e.start..e.end, &e.replacement);
    }
    Some((out, fixes))
}

/// `.partial_cmp(x).unwrap()` → `.total_cmp(x)` (also the `.expect(…)`
/// spelling). Only fires when the panic call directly follows the closing
/// paren, which is exactly the sort-comparator shape.
fn partial_cmp_fix(
    rel_path: &str,
    src: &str,
    code: &[&Token],
    line_starts: &[usize],
    edits: &mut Vec<Edit>,
    fixes: &mut Vec<Fix>,
) {
    for i in 0..code.len() {
        if !(code[i].is_ident("partial_cmp")
            && i >= 1
            && code[i - 1].is_punct(".")
            && code.get(i + 1).is_some_and(|t| t.is_punct("(")))
        {
            continue;
        }
        // Find the matching `)` of the partial_cmp argument list.
        let mut depth = 0i32;
        let mut close = None;
        for (k, t) in code.iter().enumerate().skip(i + 1) {
            if t.is_punct("(") {
                depth += 1;
            } else if t.is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    close = Some(k);
                    break;
                }
            }
        }
        let Some(close) = close else { continue };
        // `.unwrap()` or `.expect(…)` must follow immediately.
        if !code.get(close + 1).is_some_and(|t| t.is_punct(".")) {
            continue;
        }
        let panic_call = match code.get(close + 2) {
            Some(t) if t.is_ident("unwrap") || t.is_ident("expect") => t,
            _ => continue,
        };
        if !code.get(close + 3).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        let mut depth2 = 0i32;
        let mut panic_close = None;
        for (k, t) in code.iter().enumerate().skip(close + 3) {
            if t.is_punct("(") {
                depth2 += 1;
            } else if t.is_punct(")") {
                depth2 -= 1;
                if depth2 == 0 {
                    panic_close = Some(k);
                    break;
                }
            }
        }
        let Some(panic_close) = panic_close else {
            continue;
        };
        // Rename the method…
        let name_start = byte_offset(line_starts, src, code[i].line, code[i].col);
        edits.push(Edit {
            start: name_start,
            end: name_start + "partial_cmp".len(),
            replacement: "total_cmp".to_string(),
        });
        // …and drop `.unwrap()` / `.expect(…)`.
        let dot = code[close + 1];
        let del_start = byte_offset(line_starts, src, dot.line, dot.col);
        let endt = code[panic_close];
        let del_end = byte_offset(line_starts, src, endt.line, endt.col) + 1;
        edits.push(Edit {
            start: del_start,
            end: del_end,
            replacement: String::new(),
        });
        fixes.push(Fix {
            file: rel_path.to_string(),
            line: code[i].line,
            what: format!(
                "rewrote `.partial_cmp(…).{}(…)` to `.total_cmp(…)`",
                panic_call.text
            ),
        });
    }
}

/// Appends `-- FIXME(lint): …` scaffolding to line-comment `lint:allow`s
/// that lack a justification.
fn allow_scaffold_fix(
    rel_path: &str,
    src: &str,
    tokens: &[Token],
    line_starts: &[usize],
    edits: &mut Vec<Edit>,
    fixes: &mut Vec<Fix>,
) {
    let allows = crate::allow::collect_allows(tokens);
    for a in &allows {
        if a.justified {
            continue;
        }
        // Find the comment token this allow was parsed from.
        let Some(tok) = tokens.iter().find(|t| {
            t.is_comment() && t.line == a.line && t.col == a.col && t.text.starts_with("//")
        }) else {
            continue; // block comments are left to a human
        };
        if tok.text.contains("FIXME(lint)") {
            continue; // already scaffolded, still awaiting prose
        }
        let start = byte_offset(line_starts, src, tok.line, tok.col);
        let end = start + tok.text.len();
        let trimmed = tok.text.trim_end();
        let scaffold = if trimmed.ends_with("--") {
            format!("{trimmed} FIXME(lint): justify this site or fix it")
        } else {
            format!("{trimmed} -- FIXME(lint): justify this site or fix it")
        };
        edits.push(Edit {
            start,
            end,
            replacement: scaffold,
        });
        fixes.push(Fix {
            file: rel_path.to_string(),
            line: tok.line,
            what: "scaffolded missing lint:allow justification with FIXME(lint)".to_string(),
        });
    }
}

/// Guard used by tests: the fixer must never touch string literals.
#[must_use]
pub fn touches_only_code(src: &str, fixed: &str) -> bool {
    let count = |s: &str| {
        tokenize(s)
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .count()
    };
    count(src) == count(fixed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_cmp_unwrap_becomes_total_cmp() {
        let src = "fn f(xs: &mut [f64]) {\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
        let (rewritten, fixes) = fix_source("crates/core/src/x.rs", src).expect("fix applies");
        assert!(rewritten.contains("a.total_cmp(b));"), "{rewritten}");
        assert!(!rewritten.contains("partial_cmp"));
        assert!(!rewritten.contains("unwrap"));
        assert_eq!(fixes.len(), 1);
        assert_eq!(fixes[0].line, 2);
        assert!(touches_only_code(src, &rewritten));
    }

    #[test]
    fn partial_cmp_expect_with_message_also_rewrites() {
        let src = "fn f(a: f64, b: f64) -> std::cmp::Ordering {\n    a.partial_cmp(&b).expect(\"not NaN\")\n}\n";
        let (fixed, _) = fix_source("x.rs", src).expect("fix applies");
        assert!(fixed.contains("a.total_cmp(&b)\n"), "{fixed}");
    }

    #[test]
    fn lone_partial_cmp_is_untouched() {
        let src =
            "fn f(a: f64, b: f64) -> Option<std::cmp::Ordering> {\n    a.partial_cmp(&b)\n}\n";
        assert!(fix_source("x.rs", src).is_none());
    }

    #[test]
    fn partial_cmp_in_string_is_untouched() {
        let src = "fn f() -> &'static str {\n    \"a.partial_cmp(b).unwrap()\"\n}\n";
        assert!(fix_source("x.rs", src).is_none());
    }

    #[test]
    fn unjustified_allow_gains_fixme_scaffold() {
        let src = "fn f(a: f64) -> bool {\n    // lint:allow(no-float-eq)\n    a == 1.0\n}\n";
        let (rewritten, fixes) = fix_source("x.rs", src).expect("fix applies");
        assert!(
            rewritten
                .contains("// lint:allow(no-float-eq) -- FIXME(lint): justify this site or fix it"),
            "{rewritten}"
        );
        assert_eq!(fixes.len(), 1);
        // The scaffold must NOT count as a justification.
        let allows = crate::allow::collect_allows(&tokenize(&rewritten));
        assert!(!allows[0].justified, "FIXME scaffolding must not launder");
    }

    #[test]
    fn bare_double_dash_allow_is_completed_in_place() {
        let src = "// lint:allow(no-float-eq) --\nlet x = 1;\n";
        let (fixed, _) = fix_source("x.rs", src).expect("fix applies");
        assert!(
            fixed.contains("-- FIXME(lint): justify this site or fix it"),
            "{fixed}"
        );
        assert!(!fixed.contains("-- --"), "{fixed}");
    }

    #[test]
    fn justified_allow_is_untouched() {
        let src = "// lint:allow(no-float-eq) -- sentinel, documented\nlet x = 1;\n";
        assert!(fix_source("x.rs", src).is_none());
    }

    #[test]
    fn fixes_are_idempotent() {
        let src = "fn f(xs: &mut [f64]) {\n    // lint:allow(no-float-eq)\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
        let (once, _) = fix_source("x.rs", src).expect("fix applies");
        assert!(fix_source("x.rs", &once).is_none(), "second pass: {once}");
    }

    #[test]
    fn multibyte_lines_keep_offsets_straight() {
        let src = "fn f(xs: &mut [f64]) {\n    let _ = \"λλλ\"; let _ = xs[0].partial_cmp(&xs[1]).unwrap();\n}\n";
        let (fixed, _) = fix_source("x.rs", src).expect("fix applies");
        assert!(fixed.contains("\"λλλ\""), "{fixed}");
        assert!(fixed.contains(".total_cmp(&xs[1]);"), "{fixed}");
    }
}
