//! File classification, workspace walking, and rule orchestration.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::allow::{allow_diagnostics, collect_allows, is_suppressed, Allow};
use crate::diag::{Diagnostic, LintReport, RuleId};
use crate::rules::{run_rules, FileContext, FileKind};
use crate::symgraph::{ParsedFile, SymbolGraph};
use crate::tokenizer::tokenize;

/// Classifies one workspace-relative path. `None` means the file is not
/// linted at all (fixtures, non-Rust files).
#[must_use]
pub fn classify(rel_path: &str) -> Option<FileContext> {
    let is_rust = Path::new(rel_path)
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("rs"));
    if !is_rust || rel_path.contains("/fixtures/") {
        return None;
    }
    let parts: Vec<&str> = rel_path.split('/').collect();
    let (crate_name, kind, is_crate_root) = match parts.as_slice() {
        ["crates", name, "src", "bin", ..] => (Some(*name), FileKind::Bin, false),
        ["crates", name, "src", "lib.rs"] => (Some(*name), FileKind::Lib, true),
        ["crates", name, "src", ..] => (Some(*name), FileKind::Lib, false),
        ["crates", name, "tests" | "benches", ..] => (Some(*name), FileKind::Test, false),
        ["tests", "src", ..] => (Some("integration"), FileKind::Lib, false),
        ["tests", "tests", ..] => (Some("integration"), FileKind::Test, false),
        ["examples", ..] => (Some("examples"), FileKind::Example, false),
        // Anything else (scratch files handed to the CLI) is linted at full
        // strictness: library code in a sim-critical crate.
        _ => (None, FileKind::Lib, false),
    };
    Some(FileContext {
        rel_path: rel_path.to_string(),
        crate_name: crate_name.map(str::to_string),
        kind,
        is_crate_root,
    })
}

/// Lints one file's source text: code rules, then the allow layer.
///
/// Returns the surviving diagnostics and how many were suppressed by a
/// justified `lint:allow`. Whole-workspace runs ([`lint_paths`]) add the
/// structural passes (taint, panic paths, lock order) on top of this.
#[must_use]
pub fn lint_source(ctx: &FileContext, src: &str) -> (Vec<Diagnostic>, usize) {
    let tokens = tokenize(src);
    let allows = collect_allows(&tokens);
    let (kept, by_rule) = token_pass(ctx, &tokens, &allows);
    (kept, by_rule.values().sum())
}

/// The token-rule layer for one file: raw rules, suppression by justified
/// allows (counted per rule), and the allow-annotation audit.
fn token_pass(
    ctx: &FileContext,
    tokens: &[crate::tokenizer::Token],
    allows: &[Allow],
) -> (Vec<Diagnostic>, std::collections::BTreeMap<RuleId, usize>) {
    let raw = run_rules(ctx, tokens);
    let mut kept: Vec<Diagnostic> = Vec::new();
    let mut by_rule = std::collections::BTreeMap::new();
    for d in raw {
        if is_suppressed(&d, allows) {
            *by_rule.entry(d.rule).or_insert(0) += 1;
        } else {
            kept.push(d);
        }
    }
    // The annotations themselves are audited everywhere, tests included.
    kept.extend(allow_diagnostics(&ctx.rel_path, allows));
    kept.sort_by_key(|d| (d.line, d.col, d.rule));
    (kept, by_rule)
}

/// The directories a whole-workspace run walks.
const WORKSPACE_DIRS: &[&str] = &["crates", "examples", "tests"];

/// Lints the whole workspace at `root`, or just `paths` (files or
/// directories, relative to `root` or absolute) when non-empty.
///
/// # Errors
/// I/O errors from the walk or file reads; `NotFound` when a given path
/// does not exist or `root` has no workspace directory at all.
pub fn lint_paths(root: &Path, paths: &[String]) -> io::Result<LintReport> {
    let files = collect_files(root, paths)?;

    // Pass 1: tokenize + parse every file once; token rules run per file.
    let mut report = LintReport::default();
    let mut parsed: Vec<ParsedFile> = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(ctx) = classify(&rel) else {
            continue;
        };
        let src = fs::read_to_string(file)?;
        let tokens = tokenize(&src);
        let allows = collect_allows(&tokens);
        let (diags, by_rule) = token_pass(&ctx, &tokens, &allows);
        report.checked_files += 1;
        for (rule, n) in by_rule {
            report.suppressed += n;
            *report.suppressed_by_rule.entry(rule).or_insert(0) += n;
        }
        report.violations.extend(diags);
        let ast = crate::parse::parse(&tokens);
        parsed.push(ParsedFile {
            ctx,
            tokens,
            ast,
            allows,
        });
    }

    // Pass 2: the workspace-wide structural analyses over the symbol graph.
    // Their diagnostics flow through the same per-file allow layer as the
    // token rules, so `lint:allow(determinism-taint) -- …` works and is
    // counted in the suppression ledger.
    let graph = SymbolGraph::build(&parsed);
    for d in crate::taint::structural_passes(&parsed, &graph) {
        let allows: &[Allow] = parsed
            .iter()
            .find(|pf| pf.ctx.rel_path == d.file)
            .map_or(&[], |pf| &pf.allows);
        if is_suppressed(&d, allows) {
            report.suppressed += 1;
            *report.suppressed_by_rule.entry(d.rule).or_insert(0) += 1;
        } else {
            report.violations.push(d);
        }
    }

    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(report)
}

/// Resolves the linted file set: the whole workspace under `root`, or just
/// `paths` (files or directories) when non-empty. Sorted and deduplicated.
fn collect_files(root: &Path, paths: &[String]) -> io::Result<Vec<PathBuf>> {
    let mut files: Vec<PathBuf> = Vec::new();
    if paths.is_empty() {
        let mut seen_any = false;
        for dir in WORKSPACE_DIRS {
            let dir = root.join(dir);
            if dir.is_dir() {
                seen_any = true;
                walk(&dir, &mut files)?;
            }
        }
        // A root without any workspace directory is a typo'd --root, not a
        // clean workspace.
        if !seen_any {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "{} has no crates/, examples/ or tests/ directory",
                    root.display()
                ),
            ));
        }
    } else {
        for p in paths {
            let path = root.join(p);
            if path.is_dir() {
                walk(&path, &mut files)?;
            } else if path.is_file() {
                files.push(path);
            } else {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no such file or directory: {p}"),
                ));
            }
        }
    }
    files.sort();
    files.dedup();
    Ok(files)
}

/// Applies the mechanical fixes ([`crate::fix`]) across the workspace (or
/// `paths`). With `write` false the files are left untouched — `--fix
/// --check` mode — and the caller fails the run if any fix is pending.
///
/// # Errors
/// I/O errors from the walk, reads, or (in write mode) writes.
pub fn fix_paths(root: &Path, paths: &[String], write: bool) -> io::Result<Vec<crate::fix::Fix>> {
    let files = collect_files(root, paths)?;
    let mut all: Vec<crate::fix::Fix> = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        if classify(&rel).is_none() {
            continue;
        }
        let src = fs::read_to_string(file)?;
        if let Some((fixed, fixes)) = crate::fix::fix_source(&rel, &src) {
            if write {
                fs::write(file, fixed)?;
            }
            all.extend(fixes);
        }
    }
    Ok(all)
}

/// Recursive, deterministic (sorted) `.rs` walk; skips `target`, VCS dirs,
/// and lint fixtures.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if Path::new(&name)
            .extension()
            .is_some_and(|e| e.eq_ignore_ascii_case("rs"))
        {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::RuleId;

    #[test]
    fn classification_covers_the_workspace_layout() {
        let lib = classify("crates/core/src/sim.rs").expect("some");
        assert_eq!(lib.kind, FileKind::Lib);
        assert_eq!(lib.crate_name.as_deref(), Some("core"));
        assert!(!lib.is_crate_root);
        assert!(lib.sim_critical());

        let root = classify("crates/obs/src/lib.rs").expect("some");
        assert!(root.is_crate_root);
        assert!(!root.sim_critical());

        let bin = classify("crates/bench/src/bin/fabricsim-cli.rs").expect("some");
        assert_eq!(bin.kind, FileKind::Bin);

        assert_eq!(
            classify("crates/peer/tests/pipeline.rs")
                .expect("some")
                .kind,
            FileKind::Test
        );
        assert_eq!(
            classify("tests/tests/determinism.rs").expect("some").kind,
            FileKind::Test
        );
        assert_eq!(
            classify("examples/quickstart.rs").expect("some").kind,
            FileKind::Example
        );

        // Fixtures and non-Rust files are invisible.
        assert!(classify("crates/lint/tests/fixtures/no-float-eq/bad.rs").is_none());
        assert!(classify("README.md").is_none());

        // Scratch files get maximum strictness.
        let scratch = classify("scratch.rs").expect("some");
        assert!(scratch.sim_critical());
        assert_eq!(scratch.kind, FileKind::Lib);
    }

    #[test]
    fn lint_source_applies_allows_and_counts_suppressions() {
        let ctx = classify("crates/core/src/x.rs").expect("some");
        let src = "\
fn f(a: f64) -> bool {
    // lint:allow(no-float-eq) -- sentinel compare, documented
    a == 1.0
}
fn g(a: f64) -> bool {
    a == 2.0
}
";
        let (diags, suppressed) = lint_source(&ctx, src);
        assert_eq!(suppressed, 1);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::NoFloatEq);
        assert_eq!((diags[0].line, diags[0].col), (6, 7));
    }

    #[test]
    fn unjustified_allow_surfaces_both_problems() {
        let ctx = classify("crates/core/src/x.rs").expect("some");
        let src = "fn f(a: f64) -> bool {\n    // lint:allow(no-float-eq)\n    a == 1.0\n}\n";
        let (diags, suppressed) = lint_source(&ctx, src);
        assert_eq!(suppressed, 0);
        let rules: Vec<RuleId> = diags.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&RuleId::NoFloatEq));
        assert!(rules.contains(&RuleId::AllowMissingJustification));
    }
}
