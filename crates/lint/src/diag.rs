//! Typed diagnostics and their human / JSON renderings.

use std::fmt;
use std::fmt::Write as _;

/// Every rule the engine knows, including the two meta-rules that police the
/// `lint:allow` annotations themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// `Instant::now` / `SystemTime` outside the audited `obs::WallClock`.
    NoWallClock,
    /// Iterating a `HashMap`/`HashSet` in a simulation-critical crate.
    NoHashmapIteration,
    /// `==` / `!=` against a float operand outside tests.
    NoFloatEq,
    /// `unwrap()` / `expect()` in non-test library code.
    NoUnwrapInLib,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    ForbidUnsafePresent,
    /// `thread::sleep` in a simulation-critical crate.
    NoThreadSleep,
    /// `thread::current()` / `ThreadId` in a simulation-critical crate.
    NoThreadIdentity,
    /// `Ordering::Relaxed` without a written justification.
    AtomicsOrderingAnnotated,
    /// A growable-buffer constructor (`Vec::new` & friends) in a sink module.
    NoUnboundedSink,
    /// A nondeterminism source reachable from a sim-critical crate's public
    /// API through the call graph (interprocedural).
    DeterminismTaint,
    /// A panic site reachable from a DES event handler (interprocedural).
    PanicPath,
    /// Two mutexes acquired in inconsistent order across the workspace.
    LockOrder,
    /// A `// relaxed:` note that does not sit on the atomic operation's line.
    RelaxedNoteOnOperation,
    /// A `lint:allow` with no `-- <justification>` suffix.
    AllowMissingJustification,
    /// A `lint:allow` naming a rule id the engine does not know.
    AllowUnknownRule,
}

impl RuleId {
    /// Every rule, in catalogue order.
    pub const ALL: [RuleId; 15] = [
        RuleId::NoWallClock,
        RuleId::NoHashmapIteration,
        RuleId::NoFloatEq,
        RuleId::NoUnwrapInLib,
        RuleId::ForbidUnsafePresent,
        RuleId::NoThreadSleep,
        RuleId::NoThreadIdentity,
        RuleId::AtomicsOrderingAnnotated,
        RuleId::NoUnboundedSink,
        RuleId::DeterminismTaint,
        RuleId::PanicPath,
        RuleId::LockOrder,
        RuleId::RelaxedNoteOnOperation,
        RuleId::AllowMissingJustification,
        RuleId::AllowUnknownRule,
    ];

    /// The kebab-case id used in diagnostics and `lint:allow(...)`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::NoWallClock => "no-wall-clock",
            RuleId::NoHashmapIteration => "no-hashmap-iteration",
            RuleId::NoFloatEq => "no-float-eq",
            RuleId::NoUnwrapInLib => "no-unwrap-in-lib",
            RuleId::ForbidUnsafePresent => "forbid-unsafe-present",
            RuleId::NoThreadSleep => "no-thread-sleep",
            RuleId::NoThreadIdentity => "no-thread-identity",
            RuleId::AtomicsOrderingAnnotated => "atomics-ordering-annotated",
            RuleId::NoUnboundedSink => "no-unbounded-sink",
            RuleId::DeterminismTaint => "determinism-taint",
            RuleId::PanicPath => "panic-path",
            RuleId::LockOrder => "lock-order",
            RuleId::RelaxedNoteOnOperation => "relaxed-note-on-operation",
            RuleId::AllowMissingJustification => "allow-missing-justification",
            RuleId::AllowUnknownRule => "allow-unknown-rule",
        }
    }

    /// Inverse of [`RuleId::as_str`].
    #[must_use]
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.as_str() == s)
    }

    /// One-line description for `--list-rules` and the docs.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            RuleId::NoWallClock => {
                "Instant::now/SystemTime banned outside the audited obs::WallClock entry point; \
                 simulated time must come from the DES clock"
            }
            RuleId::NoHashmapIteration => {
                "iterating HashMap/HashSet in sim-critical crates is nondeterministic per process \
                 (RandomState); use BTreeMap/BTreeSet or sort before iterating"
            }
            RuleId::NoFloatEq => {
                "==/!= on float operands outside tests; use an epsilon, an integer \
                 re-expression, or bit comparison"
            }
            RuleId::NoUnwrapInLib => {
                "unwrap()/expect() in non-test library code turns recoverable errors into panics"
            }
            RuleId::ForbidUnsafePresent => "every crate root must keep #![forbid(unsafe_code)]",
            RuleId::NoThreadSleep => {
                "thread::sleep in sim-critical crates couples results to the host scheduler"
            }
            RuleId::NoThreadIdentity => {
                "thread::current()/ThreadId in sim-critical crates lets results depend on which \
                 OS thread ran a shard; sharded runs must be worker-count-invariant"
            }
            RuleId::AtomicsOrderingAnnotated => {
                "every Ordering::Relaxed needs a written justification: a `// relaxed: <why>` \
                 note on the operation, or a justified lint:allow"
            }
            RuleId::NoUnboundedSink => {
                "growable buffers (Vec/VecDeque::new/with_capacity) in sink modules grow without \
                 bound under load; sinks must be bounded rings with an eviction counter"
            }
            RuleId::DeterminismTaint => {
                "a nondeterminism source (hash-ordered iteration, thread identity, \
                 pointer-to-int cast) in a helper crate is reachable from a sim-critical \
                 crate's public API; the diagnostic carries the full call chain"
            }
            RuleId::PanicPath => {
                "a panic site (panic!/unreachable!/todo!/unimplemented! or indexing) is \
                 reachable from a DES event handler or ShardWorld::deliver; a poisoned \
                 message must surface as an error, not abort a shard mid-window"
            }
            RuleId::LockOrder => {
                "two mutexes are acquired in opposite orders somewhere in the workspace, \
                 which can deadlock the sharded kernel's worker pool"
            }
            RuleId::RelaxedNoteOnOperation => {
                "a Relaxed atomic is annotated, but its `// relaxed:` note does not sit on \
                 the line of the atomic operation itself"
            }
            RuleId::AllowMissingJustification => "every lint:allow must carry `-- <justification>`",
            RuleId::AllowUnknownRule => "lint:allow names a rule id the engine does not know",
        }
    }

    /// Meta-rules police the annotations and cannot themselves be allowed.
    #[must_use]
    pub fn suppressible(self) -> bool {
        !matches!(
            self,
            RuleId::AllowMissingJustification | RuleId::AllowUnknownRule
        )
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One step of supporting evidence attached to a diagnostic — for the
/// interprocedural rules, the call chain from the sink down to the site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Note {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What this step shows.
    pub message: String,
}

/// One violation at one source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (characters).
    pub col: u32,
    /// Which rule fired.
    pub rule: RuleId,
    /// What is wrong, in one sentence.
    pub message: String,
    /// How to fix it, when the rule has a canonical remedy.
    pub suggestion: Option<String>,
    /// Supporting evidence (call chains for interprocedural rules).
    pub notes: Vec<Note>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )?;
        for n in &self.notes {
            write!(f, "\n    note: {}:{}: {}", n.file, n.line, n.message)?;
        }
        if let Some(s) = &self.suggestion {
            write!(f, "\n    help: {s}")?;
        }
        Ok(())
    }
}

/// Everything one engine run produced.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Unsuppressed violations, sorted by (file, line, col, rule).
    pub violations: Vec<Diagnostic>,
    /// Count of diagnostics suppressed by a justified `lint:allow`.
    pub suppressed: usize,
    /// Suppressions broken down per rule (for the ratchet file).
    pub suppressed_by_rule: std::collections::BTreeMap<RuleId, usize>,
    /// Number of files checked.
    pub checked_files: usize,
}

impl LintReport {
    /// True when CI should pass.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The `--json` rendering (schema `fabricsim-lint/v1`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"fabricsim-lint/v1\",\n");
        push_kv(&mut out, "checked_files", &self.checked_files.to_string());
        push_kv(&mut out, "suppressed", &self.suppressed.to_string());
        if !self.suppressed_by_rule.is_empty() {
            let mut obj = String::from("{");
            for (i, (rule, n)) in self.suppressed_by_rule.iter().enumerate() {
                if i > 0 {
                    obj.push_str(", ");
                }
                let _ = write!(obj, "{}: {n}", json_string(rule.as_str()));
            }
            obj.push('}');
            push_kv(&mut out, "suppressed_by_rule", &obj);
        }
        push_kv(
            &mut out,
            "violation_count",
            &self.violations.len().to_string(),
        );
        out.push_str("  \"violations\": [");
        for (i, d) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"message\": {}",
                json_string(&d.file),
                d.line,
                d.col,
                json_string(d.rule.as_str()),
                json_string(&d.message),
            );
            if let Some(s) = &d.suggestion {
                let _ = write!(out, ", \"suggestion\": {}", json_string(s));
            }
            if !d.notes.is_empty() {
                out.push_str(", \"notes\": [");
                for (k, n) in d.notes.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(
                        out,
                        "{{\"file\": {}, \"line\": {}, \"message\": {}}}",
                        json_string(&n.file),
                        n.line,
                        json_string(&n.message),
                    );
                }
                out.push(']');
            }
            out.push('}');
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// The human rendering: one block per violation plus a summary line.
    #[must_use]
    pub fn to_human(&self) -> String {
        let mut out = String::new();
        for d in &self.violations {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "fabricsim-lint: {} file(s) checked, {} violation(s), {} suppressed by lint:allow",
            self.checked_files,
            self.violations.len(),
            self.suppressed
        );
        out
    }
}

fn push_kv(out: &mut String, key: &str, raw_value: &str) {
    let _ = writeln!(out, "  \"{key}\": {raw_value},");
}

/// Minimal JSON string escaping (the repo-wide zero-dependency subset).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::parse(r.as_str()), Some(r));
        }
        assert_eq!(RuleId::parse("no-such-rule"), None);
    }

    #[test]
    fn display_is_file_line_col_rule() {
        let d = Diagnostic {
            file: "crates/core/src/sim.rs".into(),
            line: 7,
            col: 13,
            rule: RuleId::NoWallClock,
            message: "wall-clock read".into(),
            suggestion: Some("use the DES clock".into()),
            notes: Vec::new(),
        };
        let s = d.to_string();
        assert!(s.starts_with("crates/core/src/sim.rs:7:13: [no-wall-clock]"));
        assert!(s.contains("help: use the DES clock"));
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = LintReport {
            violations: vec![Diagnostic {
                file: "a.rs".into(),
                line: 1,
                col: 2,
                rule: RuleId::NoFloatEq,
                message: "float \"eq\"".into(),
                suggestion: None,
                notes: Vec::new(),
            }],
            suppressed: 3,
            suppressed_by_rule: std::collections::BTreeMap::new(),
            checked_files: 9,
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"fabricsim-lint/v1\""));
        assert!(json.contains("\"rule\": \"no-float-eq\""));
        assert!(json.contains("\\\"eq\\\""));
        assert!(json.contains("\"checked_files\": 9"));
    }

    #[test]
    fn json_string_escapes_controls() {
        assert_eq!(json_string("a\nb"), "\"a\\nb\"");
        assert_eq!(json_string("q\"q"), "\"q\\\"q\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
