//! `fabricsim-lint` — the CI entry point for the repo's determinism &
//! soundness static analysis. See the library docs for the rule catalogue.
//!
//! ```text
//! cargo run -p fabricsim-lint                      # human output
//! cargo run -p fabricsim-lint -- --json            # JSON to stdout
//! cargo run -p fabricsim-lint -- --json report.json  # JSON artifact (CI)
//! cargo run -p fabricsim-lint -- --list-rules
//! cargo run -p fabricsim-lint -- crates/core        # subset
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(fabricsim_lint::cli_run(&args));
}
