//! A lightweight recursive-descent Rust *item* parser over the token stream.
//!
//! This is not a full Rust grammar: it recovers exactly the structure the
//! workspace symbol graph ([`crate::symgraph`]) needs — `use` declarations,
//! module nesting, `impl`/`trait` blocks, `fn` items with their body token
//! ranges, and a conservative list of call sites inside each body — while
//! staying zero-dependency like the tokenizer. The parser is loss-tolerant
//! by design: anything it does not recognize is skipped without aborting the
//! file, so a macro-heavy module degrades to "fewer edges", never to a parse
//! error.
//!
//! Structure it recovers precisely:
//! * `use a::b::{c, d as e}` trees, flattened to `(path, visible-name)`
//!   pairs for `use`-aware call resolution;
//! * `mod name { … }` nesting (module path segments) and `mod name;` file
//!   modules;
//! * `impl Type { … }` / `impl Trait for Type { … }` (the trait name is kept
//!   — the panic-path pass roots on `ShardWorld::deliver` impls);
//! * `fn` items at any nesting depth, with `pub`-ness, `#[cfg(test)]` /
//!   `#[test]` containment, and the token range of the body;
//! * call sites: `free_fn(…)`, `path::to::fn(…)`, `Type::assoc(…)`,
//!   `receiver.method(…)` (turbofish tolerated), with `self`-receiver calls
//!   marked so method resolution can prefer the enclosing `impl`.

use crate::tokenizer::{Token, TokenKind};

/// One flattened `use` import: the full path and the name it binds in scope
/// (the last segment, or the `as` alias). A glob import binds `*`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// Path segments, e.g. `["std", "collections", "HashMap"]`.
    pub path: Vec<String>,
    /// The in-scope name (`HashMap`, or the `as` alias).
    pub alias: String,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Path segments as written: `["helper"]`, `["util", "helper"]`,
    /// `["Type", "assoc"]`. For method calls, the single method name.
    pub path: Vec<String>,
    /// True for `receiver.method(…)` calls.
    pub is_method: bool,
    /// True when the receiver chain starts at `self` (`self.m(…)`,
    /// `self.field.m(…)` counts too — resolution prefers the enclosing impl).
    pub recv_self: bool,
    /// 1-based line of the called name.
    pub line: u32,
    /// 1-based column of the called name.
    pub col: u32,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnDecl {
    /// Function name (raw-identifier prefix stripped).
    pub name: String,
    /// Inline-module path *within this file* (`mod a { mod b { fn f } }` →
    /// `["a", "b"]`). The file's own module path is prepended by the graph.
    pub module: Vec<String>,
    /// Enclosing `impl`/`trait` type name, if any.
    pub self_ty: Option<String>,
    /// Trait being implemented, for `impl Trait for Type` methods.
    pub trait_name: Option<String>,
    /// True for bare `pub` (restricted `pub(crate)` visibility is not
    /// public API).
    pub is_pub: bool,
    /// True under `#[cfg(test)]` / `#[test]` (directly or via an ancestor).
    pub in_test: bool,
    /// 1-based position of the `fn` name token.
    pub line: u32,
    /// 1-based column of the `fn` name token.
    pub col: u32,
    /// Token range (into the *original* token slice, comments included) of
    /// the body, brace to brace inclusive; empty for body-less items.
    pub body: (usize, usize),
    /// Conservative call sites found in the body.
    pub calls: Vec<CallSite>,
}

/// Everything recovered from one file.
#[derive(Debug, Clone, Default)]
pub struct FileAst {
    /// Flattened `use` imports.
    pub uses: Vec<UseDecl>,
    /// All `fn` items, in source order.
    pub fns: Vec<FnDecl>,
}

/// Keywords that look like a call when followed by `(`.
const EXPR_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "move", "let", "ref", "mut", "box", "await", "yield",
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScopeKind {
    /// `mod name {` — carries one module segment.
    Mod,
    /// `impl …` / `trait …` block.
    Impl,
    /// A function body (index into `fns`).
    Fn(usize),
    /// Any other brace group (struct body, match arm, plain block, …).
    Other,
}

struct Scope {
    kind: ScopeKind,
    in_test: bool,
    /// `impl`/`trait` context carried by this scope (None = inherit).
    self_ty: Option<String>,
    trait_name: Option<String>,
    /// Module segment pushed by this scope, if `Mod`.
    mod_segment: Option<String>,
}

struct Parser<'a> {
    toks: &'a [Token],
    /// Indices of non-comment tokens (the parser's working view).
    code: Vec<usize>,
    ast: FileAst,
    scopes: Vec<Scope>,
}

impl<'a> Parser<'a> {
    fn new(toks: &'a [Token]) -> Self {
        let code = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
        Parser {
            toks,
            code,
            ast: FileAst::default(),
            scopes: Vec::new(),
        }
    }

    /// The j-th code token (comments skipped).
    fn at(&self, j: usize) -> Option<&Token> {
        self.code.get(j).map(|&i| &self.toks[i])
    }

    fn is_punct(&self, j: usize, s: &str) -> bool {
        self.at(j).is_some_and(|t| t.is_punct(s))
    }

    fn is_kw(&self, j: usize, s: &str) -> bool {
        // Keywords must be exact identifiers; `r#fn` is *not* the keyword.
        self.at(j).is_some_and(|t| t.is_ident(s))
    }

    fn name_at(&self, j: usize) -> Option<String> {
        let t = self.at(j)?;
        if t.kind == TokenKind::Ident {
            Some(t.ident_name().to_string())
        } else {
            None
        }
    }

    fn in_test(&self) -> bool {
        self.scopes.last().is_some_and(|s| s.in_test)
    }

    fn current_module(&self) -> Vec<String> {
        self.scopes
            .iter()
            .filter_map(|s| s.mod_segment.clone())
            .collect()
    }

    fn current_impl(&self) -> (Option<String>, Option<String>) {
        for s in self.scopes.iter().rev() {
            if s.self_ty.is_some() {
                return (s.self_ty.clone(), s.trait_name.clone());
            }
        }
        (None, None)
    }

    fn current_fn(&self) -> Option<usize> {
        self.scopes.iter().rev().find_map(|s| match s.kind {
            ScopeKind::Fn(idx) => Some(idx),
            _ => None,
        })
    }

    /// Skips a balanced `< … >` group starting at `j` (which must be `<` or
    /// `<<`); returns the index just past the closing `>`. Tolerates the
    /// shift tokens `<<`/`>>` counting as two. Bails (returns `j + 1`) if no
    /// balance is found within a sanity window, so a stray comparison can
    /// never desynchronize the parser.
    fn skip_angles(&self, j: usize) -> usize {
        let mut depth = 0i32;
        let mut k = j;
        let limit = j + 512;
        while k < limit {
            let Some(t) = self.at(k) else { break };
            if t.is_punct("<") || t.is_punct("<=") {
                depth += 1;
            } else if t.is_punct("<<") {
                depth += 2;
            } else if t.is_punct(">") {
                depth -= 1;
            } else if t.is_punct(">>") {
                depth -= 2;
            } else if t.is_punct("->") || t.is_punct(";") || t.is_punct("{") {
                break;
            }
            k += 1;
            if depth <= 0 {
                return k;
            }
        }
        j + 1
    }

    /// Skips a balanced paren/bracket/brace group whose opener sits at `j`;
    /// returns the index just past the closer.
    fn skip_group(&self, j: usize, open: &str, close: &str) -> usize {
        let mut depth = 0usize;
        let mut k = j;
        while let Some(t) = self.at(k) {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            k += 1;
        }
        k
    }

    /// Parses the attribute group at `j` (`#` or `#!`); returns
    /// `(next_index, is_test_attr)`.
    fn parse_attr(&self, j: usize) -> (usize, bool) {
        // `#` [`!`] `[` … `]`
        let mut k = j + 1;
        if self.is_punct(k, "!") {
            k += 1;
        }
        if !self.is_punct(k, "[") {
            return (j + 1, false);
        }
        let end = self.skip_group(k, "[", "]");
        let mut is_test = false;
        // `#[test]`, `#[tokio::test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]`
        let mut saw_cfg = false;
        for idx in k + 1..end.saturating_sub(1) {
            if self.is_kw(idx, "cfg") {
                saw_cfg = true;
            }
            if self.is_kw(idx, "test") {
                // Either the attribute *is* `test` (`#[test]`, `#[x::test]`)
                // or a cfg predicate mentions it.
                let bare = idx == k + 1 && end == k + 3;
                let qualified = self.is_punct(idx.wrapping_sub(1), "::");
                if bare || qualified || saw_cfg {
                    is_test = true;
                }
            }
        }
        (end, is_test)
    }

    /// Parses a `use` tree starting after the `use` keyword; flattens into
    /// `self.ast.uses`. Returns the index just past the terminating `;`.
    fn parse_use(&mut self, j: usize) -> usize {
        let mut end = j;
        while end < self.code.len() && !self.is_punct(end, ";") {
            end += 1;
        }
        let mut prefix: Vec<String> = Vec::new();
        self.parse_use_tree(j, end, &mut prefix);
        end + 1
    }

    /// One `use` tree level: `a::b::{c, d as e, f::*}`.
    fn parse_use_tree(&mut self, mut j: usize, end: usize, prefix: &mut Vec<String>) {
        let depth_at_entry = prefix.len();
        while j < end {
            // `as` first: it lexes as an identifier and would otherwise be
            // swallowed into the path.
            if self.is_kw(j, "as") {
                if let Some(alias) = self.name_at(j + 1) {
                    self.ast.uses.push(UseDecl {
                        path: prefix.clone(),
                        alias,
                    });
                }
                prefix.truncate(depth_at_entry);
                return;
            }
            if let Some(name) = self.name_at(j) {
                prefix.push(name);
                j += 1;
            } else if self.is_punct(j, "*") {
                let mut path = prefix.clone();
                path.push("*".into());
                self.ast.uses.push(UseDecl {
                    path,
                    alias: "*".into(),
                });
                j += 1;
            } else if self.is_punct(j, "::") {
                j += 1;
            } else if self.is_punct(j, "{") {
                let close = self.skip_group(j, "{", "}");
                let mut k = j + 1;
                // Split the group's top level on commas, recursing per item.
                while k < close - 1 {
                    let mut item_end = k;
                    let mut depth = 0usize;
                    while item_end < close - 1 {
                        if self.is_punct(item_end, "{") {
                            depth += 1;
                        } else if self.is_punct(item_end, "}") {
                            depth -= 1;
                        } else if self.is_punct(item_end, ",") && depth == 0 {
                            break;
                        }
                        item_end += 1;
                    }
                    let mut sub = prefix.clone();
                    self.parse_use_tree(k, item_end, &mut sub);
                    k = item_end + 1;
                }
                prefix.truncate(depth_at_entry);
                return; // the group consumed the rest of this tree level
            } else {
                j += 1;
            }
        }
        // Plain path (no `as`, no group): binds its last segment.
        if prefix.len() > depth_at_entry {
            if let Some(last) = prefix.last().cloned() {
                self.ast.uses.push(UseDecl {
                    path: prefix.clone(),
                    alias: last,
                });
            }
        }
        prefix.truncate(depth_at_entry);
    }

    /// Parses an `impl`/`trait` header starting at the keyword; returns
    /// `(index_of_open_brace_or_semicolon, self_ty, trait_name)`.
    fn parse_impl_header(
        &self,
        j: usize,
        is_trait: bool,
    ) -> (usize, Option<String>, Option<String>) {
        let mut k = j + 1;
        if is_trait {
            // `trait Name[<…>][: Super + …] { … }` — the name is the first
            // token; supertraits after `:` must not overwrite it.
            let name = self.name_at(k);
            while k < self.code.len() && !self.is_punct(k, "{") && !self.is_punct(k, ";") {
                k += 1;
            }
            return (k, name.clone(), name);
        }
        if self.is_punct(k, "<") {
            k = self.skip_angles(k);
        }
        // Collect path-ish tokens until `{`, `;`, or `where`.
        let mut names: Vec<String> = Vec::new();
        let mut trait_name: Option<String> = None;
        let mut last_before_generics: Option<String> = None;
        while k < self.code.len() {
            if self.is_punct(k, "{") || self.is_punct(k, ";") || self.is_kw(k, "where") {
                break;
            }
            if self.is_kw(k, "for") && !is_trait {
                // `impl Trait for Type` — what we saw so far names the trait.
                trait_name.clone_from(&last_before_generics);
                names.clear();
                last_before_generics = None;
                k += 1;
                continue;
            }
            if self.is_punct(k, "<") {
                k = self.skip_angles(k);
                continue;
            }
            if let Some(n) = self.name_at(k) {
                // Skip `dyn`, `&`, lifetimes — keep the last plain name.
                if n != "dyn" && n != "mut" {
                    last_before_generics = Some(n.clone());
                    names.push(n);
                }
            }
            k += 1;
        }
        // Skip a `where` clause to the `{`.
        while k < self.code.len() && !self.is_punct(k, "{") && !self.is_punct(k, ";") {
            k += 1;
        }
        let self_ty = last_before_generics.or_else(|| names.last().cloned());
        (k, self_ty, trait_name)
    }

    /// Parses a `fn` item starting at the `fn` keyword. Registers the
    /// declaration and returns the index of its `{` (so the caller pushes the
    /// scope) or just past the `;` for body-less declarations.
    fn parse_fn(&mut self, j: usize, is_pub: bool, is_test: bool) -> usize {
        let Some(name) = self.name_at(j + 1) else {
            return j + 1;
        };
        let tok = &self.toks[self.code[j + 1]];
        let (line, col) = (tok.line, tok.col);
        let mut k = j + 2;
        if self.is_punct(k, "<") {
            k = self.skip_angles(k);
        }
        if self.is_punct(k, "(") {
            k = self.skip_group(k, "(", ")");
        }
        // Return type + where clause: scan to the body `{` or a `;`. Angle
        // groups are skipped so `-> impl Iterator<Item = &{integer}>`-ish
        // shapes cannot eat the body brace.
        while k < self.code.len() {
            if self.is_punct(k, "{") || self.is_punct(k, ";") {
                break;
            }
            if self.is_punct(k, "<") {
                k = self.skip_angles(k);
                continue;
            }
            k += 1;
        }
        let (self_ty, trait_name) = self.current_impl();
        let decl = FnDecl {
            name,
            module: self.current_module(),
            self_ty,
            trait_name,
            is_pub,
            in_test: self.in_test() || is_test,
            line,
            col,
            body: (0, 0),
            calls: Vec::new(),
        };
        self.ast.fns.push(decl);
        k
    }

    /// Records a call site for the innermost function, walking the path
    /// backwards from the called name at `j`.
    fn record_call(&mut self, j: usize) {
        let Some(fn_idx) = self.current_fn() else {
            return;
        };
        let Some(name) = self.name_at(j) else { return };
        // Keyword check on the *raw* text: `r#match(…)` is a real call to a
        // raw-identifier fn, while bare `match (…)` is syntax.
        let raw = &self.toks[self.code[j]].text;
        if EXPR_KEYWORDS.contains(&raw.as_str()) {
            return;
        }
        let tok = &self.toks[self.code[j]];
        let (line, col) = (tok.line, tok.col);
        // Method call: `.name(` — record receiver-is-self when the chain
        // bottoms out at `self`.
        if j >= 1 && self.is_punct(j - 1, ".") {
            let mut k = j - 1;
            let mut recv_self = false;
            // Walk the receiver chain: idents, `.`, `?`, `)`/`]` stop it.
            while k >= 1 {
                if self.is_punct(k, ".") || self.is_punct(k, "?") {
                    k -= 1;
                } else if self.at(k).is_some_and(|t| t.kind == TokenKind::Ident) {
                    if self.is_kw(k, "self") {
                        recv_self = true;
                    }
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                } else {
                    break;
                }
            }
            self.ast.fns[fn_idx].calls.push(CallSite {
                path: vec![name],
                is_method: true,
                recv_self,
                line,
                col,
            });
            return;
        }
        // Free / path call: collect `seg::seg::name` going backwards.
        let mut path = vec![name];
        let mut k = j;
        while k >= 2 && self.is_punct(k - 1, "::") {
            if let Some(seg) = self.name_at(k - 2) {
                path.insert(0, seg);
                k -= 2;
            } else {
                break;
            }
        }
        self.ast.fns[fn_idx].calls.push(CallSite {
            path,
            is_method: false,
            recv_self: false,
            line,
            col,
        });
    }

    /// True when the code token at `j` (an ident) is directly followed by a
    /// call's `(`, tolerating one `::<…>` turbofish in between.
    fn is_called_at(&self, j: usize) -> Option<()> {
        if self.is_punct(j + 1, "(") {
            return Some(());
        }
        if self.is_punct(j + 1, "::") && self.is_punct(j + 2, "<") {
            let after = self.skip_angles(j + 2);
            if self.is_punct(after, "(") {
                return Some(());
            }
        }
        None
    }

    #[allow(clippy::too_many_lines)] // one linear dispatch loop; splitting obscures the state machine
    fn run(mut self) -> FileAst {
        // The file root scope.
        self.scopes.push(Scope {
            kind: ScopeKind::Other,
            in_test: false,
            self_ty: None,
            trait_name: None,
            mod_segment: None,
        });
        let mut pending_pub = false;
        let mut pending_test = false;
        // Pending scope metadata to attach at the next `{`.
        let mut pending: Option<Scope> = None;
        let mut j = 0usize;
        while j < self.code.len() {
            // Attributes: `#[…]` / `#![…]`.
            if self.is_punct(j, "#") {
                let (next, is_test) = self.parse_attr(j);
                pending_test = pending_test || is_test;
                j = next;
                continue;
            }
            if self.is_kw(j, "pub") {
                // `pub(crate)` / `pub(super)` / `pub(in path)` are restricted.
                if self.is_punct(j + 1, "(") {
                    j = self.skip_group(j + 1, "(", ")");
                } else {
                    pending_pub = true;
                    j += 1;
                }
                continue;
            }
            if self.is_kw(j, "use") {
                j = self.parse_use(j + 1);
                pending_pub = false;
                pending_test = false;
                continue;
            }
            if self.is_kw(j, "mod") {
                if let Some(name) = self.name_at(j + 1) {
                    if self.is_punct(j + 2, "{") {
                        pending = Some(Scope {
                            kind: ScopeKind::Mod,
                            in_test: self.in_test() || pending_test,
                            self_ty: None,
                            trait_name: None,
                            mod_segment: Some(name),
                        });
                        j += 2; // land on `{`, handled below
                    } else {
                        j += 3; // `mod name;`
                    }
                } else {
                    j += 1;
                }
                pending_pub = false;
                pending_test = false;
                continue;
            }
            if self.is_kw(j, "impl") || self.is_kw(j, "trait") {
                let is_trait = self.is_kw(j, "trait");
                let (brace, self_ty, trait_name) = self.parse_impl_header(j, is_trait);
                let _ = is_trait; // trait headers already folded into the pair
                if self.is_punct(brace, "{") {
                    pending = Some(Scope {
                        kind: ScopeKind::Impl,
                        in_test: self.in_test() || pending_test,
                        self_ty,
                        trait_name,
                        mod_segment: None,
                    });
                    j = brace;
                } else {
                    j = brace + 1;
                }
                pending_pub = false;
                pending_test = false;
                continue;
            }
            if self.is_kw(j, "fn") {
                let body_or_semi = self.parse_fn(j, pending_pub, pending_test);
                if self.is_punct(body_or_semi, "{") {
                    let idx = self.ast.fns.len() - 1;
                    self.ast.fns[idx].body.0 = self.code[body_or_semi];
                    pending = Some(Scope {
                        kind: ScopeKind::Fn(idx),
                        in_test: self.ast.fns[idx].in_test,
                        self_ty: None,
                        trait_name: None,
                        mod_segment: None,
                    });
                    j = body_or_semi;
                } else {
                    j = body_or_semi + 1;
                }
                pending_pub = false;
                pending_test = false;
                continue;
            }
            if self.at(j).is_some_and(|t| t.is_ident("macro_rules")) {
                // `macro_rules! name { … }` — skip the whole definition so
                // its token soup never produces phantom calls.
                let mut k = j + 1;
                while k < self.code.len() && !self.is_punct(k, "{") {
                    k += 1;
                }
                j = self.skip_group(k, "{", "}");
                pending_pub = false;
                pending_test = false;
                continue;
            }
            if self.is_punct(j, "{") {
                let scope = pending.take().unwrap_or(Scope {
                    kind: ScopeKind::Other,
                    in_test: self.in_test(),
                    self_ty: None,
                    trait_name: None,
                    mod_segment: None,
                });
                self.scopes.push(scope);
                j += 1;
                continue;
            }
            if self.is_punct(j, "}") {
                if self.scopes.len() > 1 {
                    if let Some(popped) = self.scopes.pop() {
                        if let ScopeKind::Fn(idx) = popped.kind {
                            // Only set the end for the *outermost* close of
                            // this fn (nested blocks pop their own scopes).
                            if self.ast.fns[idx].body.1 == 0 {
                                self.ast.fns[idx].body.1 = self.code[j] + 1;
                            }
                        }
                    }
                }
                j += 1;
                continue;
            }
            // Call-site detection inside function bodies.
            if self.at(j).is_some_and(|t| t.kind == TokenKind::Ident)
                && self.current_fn().is_some()
                && self.is_called_at(j).is_some()
            {
                self.record_call(j);
            }
            pending_pub = false;
            pending_test = false;
            j += 1;
        }
        self.ast
    }
}

/// Parses one file's token stream into its item structure.
#[must_use]
pub fn parse(tokens: &[Token]) -> FileAst {
    Parser::new(tokens).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn ast(src: &str) -> FileAst {
        parse(&tokenize(src))
    }

    #[test]
    fn fns_with_modules_impls_and_visibility() {
        let a = ast("pub fn top() {}\nmod inner {\n    fn helper() {}\n    pub(crate) fn semi() {}\n}\nimpl Widget {\n    pub fn method(&self) {}\n}\n");
        let names: Vec<(&str, bool)> = a.fns.iter().map(|f| (f.name.as_str(), f.is_pub)).collect();
        assert_eq!(
            names,
            vec![
                ("top", true),
                ("helper", false),
                ("semi", false), // pub(crate) is not public API
                ("method", true),
            ]
        );
        assert_eq!(a.fns[1].module, vec!["inner".to_string()]);
        assert_eq!(a.fns[3].self_ty.as_deref(), Some("Widget"));
    }

    #[test]
    fn trait_impls_carry_the_trait_name() {
        let a = ast("impl ShardWorld for EchoWorld {\n    fn deliver(&mut self) {}\n}\n");
        let f = &a.fns[0];
        assert_eq!(f.name, "deliver");
        assert_eq!(f.self_ty.as_deref(), Some("EchoWorld"));
        assert_eq!(f.trait_name.as_deref(), Some("ShardWorld"));
    }

    #[test]
    fn generic_impl_headers_resolve_the_type() {
        let a = ast("impl<'a, T: Clone> Holder<'a, T> {\n    fn get(&self) {}\n}\n");
        assert_eq!(a.fns[0].self_ty.as_deref(), Some("Holder"));
    }

    #[test]
    fn cfg_test_and_test_attrs_mark_functions() {
        let a = ast("fn real() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n    fn helper() {}\n}\n");
        assert!(!a.fns[0].in_test);
        assert!(a.fns[1].in_test);
        assert!(a.fns[2].in_test, "helpers inside cfg(test) mods are test");
    }

    #[test]
    fn use_trees_flatten_with_aliases_and_globs() {
        let a = ast("use std::collections::{HashMap, HashSet as Set};\nuse crate::util::*;\nuse fabricsim_des::Kernel;\n");
        assert!(a.uses.contains(&UseDecl {
            path: vec!["std".into(), "collections".into(), "HashMap".into()],
            alias: "HashMap".into()
        }));
        assert!(a.uses.contains(&UseDecl {
            path: vec!["std".into(), "collections".into(), "HashSet".into()],
            alias: "Set".into()
        }));
        assert!(a.uses.contains(&UseDecl {
            path: vec!["crate".into(), "util".into(), "*".into()],
            alias: "*".into()
        }));
        assert!(a.uses.contains(&UseDecl {
            path: vec!["fabricsim_des".into(), "Kernel".into()],
            alias: "Kernel".into()
        }));
    }

    #[test]
    fn call_sites_free_path_assoc_and_method() {
        let a = ast("fn f(x: &W) {\n    helper();\n    util::deep(1);\n    Widget::assoc();\n    x.method(2);\n    self_like();\n}\n");
        let calls: Vec<(Vec<String>, bool)> = a.fns[0]
            .calls
            .iter()
            .map(|c| (c.path.clone(), c.is_method))
            .collect();
        assert!(calls.contains(&(vec!["helper".into()], false)));
        assert!(calls.contains(&(vec!["util".into(), "deep".into()], false)));
        assert!(calls.contains(&(vec!["Widget".into(), "assoc".into()], false)));
        assert!(calls.contains(&(vec!["method".into()], true)));
    }

    #[test]
    fn self_receiver_and_turbofish_calls() {
        let a = ast("impl W {\n    fn go(&self) {\n        self.step();\n        self.inner.leaf();\n        parse::<u32>(\"1\");\n        it.collect::<Vec<_>>();\n    }\n}\n");
        let c = &a.fns[0].calls;
        assert!(c
            .iter()
            .any(|s| s.path == vec!["step".to_string()] && s.recv_self));
        assert!(c
            .iter()
            .any(|s| s.path == vec!["leaf".to_string()] && s.recv_self));
        assert!(c
            .iter()
            .any(|s| s.path == vec!["parse".to_string()] && !s.is_method));
        assert!(c
            .iter()
            .any(|s| s.path == vec!["collect".to_string()] && s.is_method));
    }

    #[test]
    fn keywords_and_macros_are_not_calls() {
        let a = ast("fn f() {\n    if (a) {}\n    while (b) {}\n    panic!(\"x\");\n    vec![1];\n    m.insert(k, v);\n}\n");
        for c in &a.fns[0].calls {
            assert_ne!(c.path.last().map(String::as_str), Some("if"));
            assert_ne!(c.path.last().map(String::as_str), Some("while"));
            assert_ne!(c.path.last().map(String::as_str), Some("panic"));
            assert_ne!(c.path.last().map(String::as_str), Some("vec"));
        }
        assert!(a.fns[0]
            .calls
            .iter()
            .any(|c| c.path == vec!["insert".to_string()]));
    }

    #[test]
    fn body_ranges_cover_nested_braces() {
        let src =
            "fn outer() {\n    let x = { inner() };\n    match x { _ => {} }\n}\nfn after() {}\n";
        let a = ast(src);
        assert_eq!(a.fns.len(), 2);
        let toks = tokenize(src);
        let (s, e) = a.fns[0].body;
        assert!(toks[s].is_punct("{"));
        assert!(toks[e - 1].is_punct("}"));
        // `after`'s body is separate and later.
        assert!(a.fns[1].body.0 > e);
        // The inner call was attributed to `outer`.
        assert!(a.fns[0]
            .calls
            .iter()
            .any(|c| c.path == vec!["inner".to_string()]));
    }

    #[test]
    fn raw_identifiers_parse_as_names() {
        let a = ast("fn r#type() { r#match(); }\n");
        assert_eq!(a.fns[0].name, "type");
        assert!(a.fns[0]
            .calls
            .iter()
            .any(|c| c.path == vec!["match".to_string()]));
    }

    #[test]
    fn where_clauses_and_return_impls_do_not_eat_the_body() {
        let a = ast("fn f<T>(t: T) -> impl Iterator<Item = T>\nwhere\n    T: Clone,\n{\n    body_call();\n    std::iter::once(t)\n}\n");
        assert_eq!(a.fns.len(), 1);
        assert!(a.fns[0]
            .calls
            .iter()
            .any(|c| c.path == vec!["body_call".to_string()]));
    }

    #[test]
    fn macro_rules_definitions_are_skipped() {
        let a = ast("macro_rules! m {\n    ($x:expr) => { phantom_call($x) };\n}\nfn real() { actual(); }\n");
        assert_eq!(a.fns.len(), 1);
        assert!(a.fns[0]
            .calls
            .iter()
            .any(|c| c.path == vec!["actual".to_string()]));
        assert!(!a.fns[0]
            .calls
            .iter()
            .any(|c| c.path == vec!["phantom_call".to_string()]));
    }
}
