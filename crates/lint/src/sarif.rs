//! SARIF 2.1.0 output (`--sarif FILE`), plus the repo-local validator that
//! keeps the writer honest — the same pattern as
//! `fabricsim_obs::registry::validate_exposition`: since the workspace takes
//! no serde dependency, the emitter is hand-rolled, so a hand-rolled reader
//! re-parses every report and checks the invariants GitHub code scanning
//! (and any other SARIF consumer) relies on.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::diag::{json_string, Diagnostic, LintReport, RuleId};

/// Renders a report as a single-run SARIF 2.1.0 log.
#[must_use]
pub fn to_sarif(report: &LintReport) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"fabricsim-lint\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/fabricsim\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in RuleId::ALL.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}",
            json_string(rule.as_str()),
            json_string(rule.description())
        );
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, d) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("        {\n");
        let _ = write!(
            out,
            "          \"ruleId\": {},\n          \"level\": \"error\",\n",
            json_string(d.rule.as_str())
        );
        let _ = writeln!(
            out,
            "          \"message\": {{\"text\": {}}},",
            json_string(&d.message)
        );
        out.push_str("          \"locations\": [");
        out.push_str(&location(&d.file, d.line, Some(d.col), None));
        out.push(']');
        if !d.notes.is_empty() {
            out.push_str(",\n          \"relatedLocations\": [");
            for (k, n) in d.notes.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                out.push_str(&location(&n.file, n.line, None, Some(&n.message)));
            }
            out.push(']');
        }
        out.push_str("\n        }");
    }
    if !report.violations.is_empty() {
        out.push('\n');
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// One `physicalLocation` object, with optional column and message.
fn location(uri: &str, line: u32, col: Option<u32>, message: Option<&str>) -> String {
    let mut s = String::from("{\"physicalLocation\": {\"artifactLocation\": {\"uri\": ");
    s.push_str(&json_string(uri));
    let _ = write!(s, "}}, \"region\": {{\"startLine\": {line}");
    if let Some(c) = col {
        let _ = write!(s, ", \"startColumn\": {c}");
    }
    s.push_str("}}");
    if let Some(m) = message {
        let _ = write!(s, ", \"message\": {{\"text\": {}}}", json_string(m));
    }
    s.push('}');
    s
}

/// A parsed JSON value — the minimal zero-dependency reader the validator
/// runs on the writer's own output.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number written without `.` or an exponent — lines, columns, counts.
    Int(i64),
    /// Any other number. Never compared for equality (floats).
    Num(f64),
    /// String (escapes decoded).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (`BTreeMap`: deterministic iteration).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number as u32, if this is an integer in range.
    #[must_use]
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Json::Int(n) => u32::try_from(*n).ok(),
            _ => None,
        }
    }
}

/// Parses one JSON document.
///
/// # Errors
/// A message with a byte offset on malformed input or trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(text, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let Json::Str(key) = parse_value(text, bytes, pos)? else {
                    return Err(format!("object key is not a string at byte {pos}"));
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(text, bytes, pos)?;
                map.insert(key, val);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(text, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(text, bytes, pos).map(Json::Str),
        Some(b't') if text[*pos..].starts_with("true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if text[*pos..].starts_with("false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if text[*pos..].starts_with("null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let lit = &text[start..*pos];
            if let Ok(i) = lit.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            lit.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number at byte {start}: {e}"))
        }
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                let esc = bytes
                    .get(*pos + 1)
                    .ok_or_else(|| "dangling escape".to_string())?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = text
                            .get(*pos + 2..*pos + 6)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                        // Surrogates never appear in this writer's output.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("unknown escape \\{}", *other as char)),
                }
                *pos += 2;
            }
            _ => {
                // Multi-byte UTF-8: copy the full scalar.
                let s = &text[*pos..];
                let c = s.chars().next().ok_or_else(|| "bad utf8".to_string())?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Validates a SARIF log against the subset of SARIF 2.1.0 this tool emits
/// and consumers require: version, a single run with a named driver, every
/// result carrying a known `ruleId`, a message, and a physical location
/// with a uri and a 1-based `startLine`.
///
/// # Errors
/// The first violated invariant, as a message.
pub fn validate_sarif(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    if doc.get("version").and_then(Json::as_str) != Some("2.1.0") {
        return Err("version must be \"2.1.0\"".to_string());
    }
    let runs = doc
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or("runs must be an array")?;
    if runs.is_empty() {
        return Err("runs must be non-empty".to_string());
    }
    for run in runs {
        let driver = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .ok_or("run.tool.driver missing")?;
        if driver.get("name").and_then(Json::as_str).is_none() {
            return Err("driver.name missing".to_string());
        }
        let rule_ids: Vec<&str> = driver
            .get("rules")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|r| r.get("id").and_then(Json::as_str))
            .collect();
        let results = run
            .get("results")
            .and_then(Json::as_arr)
            .ok_or("run.results must be an array")?;
        for (i, r) in results.iter().enumerate() {
            let rule = r
                .get("ruleId")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("result {i}: ruleId missing"))?;
            if !rule_ids.contains(&rule) {
                return Err(format!("result {i}: ruleId {rule:?} not in driver.rules"));
            }
            if r.get("message")
                .and_then(|m| m.get("text"))
                .and_then(Json::as_str)
                .is_none()
            {
                return Err(format!("result {i}: message.text missing"));
            }
            let locs = r
                .get("locations")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("result {i}: locations missing"))?;
            let mut all_locs: Vec<&Json> = locs.iter().collect();
            if let Some(related) = r.get("relatedLocations").and_then(Json::as_arr) {
                all_locs.extend(related.iter());
            }
            if locs.is_empty() {
                return Err(format!("result {i}: locations empty"));
            }
            for l in all_locs {
                let phys = l
                    .get("physicalLocation")
                    .ok_or_else(|| format!("result {i}: physicalLocation missing"))?;
                let uri = phys
                    .get("artifactLocation")
                    .and_then(|a| a.get("uri"))
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("result {i}: artifactLocation.uri missing"))?;
                if uri.is_empty() || uri.starts_with('/') {
                    return Err(format!("result {i}: uri must be relative and non-empty"));
                }
                let line = phys
                    .get("region")
                    .and_then(|g| g.get("startLine"))
                    .and_then(Json::as_u32)
                    .ok_or_else(|| format!("result {i}: region.startLine missing"))?;
                if line == 0 {
                    return Err(format!("result {i}: startLine must be 1-based"));
                }
            }
        }
    }
    Ok(())
}

/// Checks that every diagnostic in `report` appears in the SARIF text with
/// its rule id, location, and each call-chain note — the round-trip the
/// acceptance gate requires.
///
/// # Errors
/// A message naming the first diagnostic (or note) that did not survive.
pub fn round_trip(report: &LintReport, sarif_text: &str) -> Result<(), String> {
    let doc = parse_json(sarif_text)?;
    let results = doc
        .get("runs")
        .and_then(Json::as_arr)
        .and_then(|r| r.first())
        .and_then(|run| run.get("results"))
        .and_then(Json::as_arr)
        .ok_or("no runs[0].results")?;
    for d in &report.violations {
        let found = results.iter().find(|r| result_matches(r, d));
        let Some(r) = found else {
            return Err(format!(
                "diagnostic {}:{}:{} [{}] not present in SARIF",
                d.file, d.line, d.col, d.rule
            ));
        };
        let related = r
            .get("relatedLocations")
            .and_then(Json::as_arr)
            .unwrap_or(&[]);
        for n in &d.notes {
            let hit = related.iter().any(|l| {
                let phys = l.get("physicalLocation");
                let uri = phys
                    .and_then(|p| p.get("artifactLocation"))
                    .and_then(|a| a.get("uri"))
                    .and_then(Json::as_str);
                let line = phys
                    .and_then(|p| p.get("region"))
                    .and_then(|g| g.get("startLine"))
                    .and_then(Json::as_u32);
                let msg = l
                    .get("message")
                    .and_then(|m| m.get("text"))
                    .and_then(Json::as_str);
                uri == Some(n.file.as_str())
                    && line == Some(n.line)
                    && msg == Some(n.message.as_str())
            });
            if !hit {
                return Err(format!(
                    "note {}:{} {:?} lost in SARIF round-trip",
                    n.file, n.line, n.message
                ));
            }
        }
    }
    Ok(())
}

/// True when a SARIF result matches a diagnostic's id, message, and site.
fn result_matches(r: &Json, d: &Diagnostic) -> bool {
    if r.get("ruleId").and_then(Json::as_str) != Some(d.rule.as_str()) {
        return false;
    }
    if r.get("message")
        .and_then(|m| m.get("text"))
        .and_then(Json::as_str)
        != Some(d.message.as_str())
    {
        return false;
    }
    let Some(loc) = r
        .get("locations")
        .and_then(Json::as_arr)
        .and_then(|l| l.first())
        .and_then(|l| l.get("physicalLocation"))
    else {
        return false;
    };
    loc.get("artifactLocation")
        .and_then(|a| a.get("uri"))
        .and_then(Json::as_str)
        == Some(d.file.as_str())
        && loc
            .get("region")
            .and_then(|g| g.get("startLine"))
            .and_then(Json::as_u32)
            == Some(d.line)
        && loc
            .get("region")
            .and_then(|g| g.get("startColumn"))
            .and_then(Json::as_u32)
            == Some(d.col)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Note;

    fn sample_report() -> LintReport {
        LintReport {
            violations: vec![
                Diagnostic {
                    file: "crates/obs/src/agg.rs".into(),
                    line: 4,
                    col: 14,
                    rule: RuleId::DeterminismTaint,
                    message: "hash iteration reachable from `fabricsim_core::sim::tick`".into(),
                    suggestion: Some("sort before iterating".into()),
                    notes: vec![
                        Note {
                            file: "crates/core/src/sim.rs".into(),
                            line: 2,
                            message: "`tick` is a public API".into(),
                        },
                        Note {
                            file: "crates/core/src/sim.rs".into(),
                            line: 3,
                            message: "which calls `summarize`".into(),
                        },
                    ],
                },
                Diagnostic {
                    file: "crates/core/src/sim.rs".into(),
                    line: 9,
                    col: 5,
                    rule: RuleId::NoFloatEq,
                    message: "`==` compares floats with a \"quote\"".into(),
                    suggestion: None,
                    notes: Vec::new(),
                },
            ],
            suppressed: 2,
            suppressed_by_rule: BTreeMap::new(),
            checked_files: 7,
        }
    }

    #[test]
    fn emitted_sarif_validates_and_round_trips() {
        let report = sample_report();
        let sarif = to_sarif(&report);
        validate_sarif(&sarif).expect("valid SARIF");
        round_trip(&report, &sarif).expect("round trip");
    }

    #[test]
    fn empty_report_is_valid_sarif() {
        let report = LintReport::default();
        let sarif = to_sarif(&report);
        validate_sarif(&sarif).expect("valid SARIF");
        round_trip(&report, &sarif).expect("round trip");
    }

    #[test]
    fn validator_rejects_wrong_version() {
        let report = sample_report();
        let sarif = to_sarif(&report).replace("2.1.0\",", "2.0.0\",");
        assert!(validate_sarif(&sarif).is_err());
    }

    #[test]
    fn validator_rejects_unknown_rule_id() {
        let report = sample_report();
        let sarif =
            to_sarif(&report).replace("\"ruleId\": \"no-float-eq\"", "\"ruleId\": \"bogus\"");
        let err = validate_sarif(&sarif).expect_err("must reject");
        assert!(err.contains("bogus"), "{err}");
    }

    #[test]
    fn round_trip_detects_dropped_note() {
        let report = sample_report();
        let sarif = to_sarif(&report).replace("which calls `summarize`", "which calls `other`");
        let err = round_trip(&report, &sarif).expect_err("must detect");
        assert!(err.contains("summarize"), "{err}");
    }

    #[test]
    fn json_reader_handles_escapes_and_nesting() {
        let doc = parse_json(r#"{"a": [1, 2.5, {"b": "x\n\"y\"", "c": null}], "t": true}"#)
            .expect("parses");
        assert_eq!(
            doc.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        let b = doc
            .get("a")
            .and_then(Json::as_arr)
            .and_then(|a| a[2].get("b"));
        assert_eq!(b.and_then(Json::as_str), Some("x\n\"y\""));
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2] garbage").is_err());
    }
}
