//! The interprocedural passes over the workspace symbol graph:
//!
//! * **determinism taint** — nondeterminism sources (hash-ordered iteration,
//!   thread identity, pointer-to-int casts) that a sim-critical crate's
//!   public API can reach through the call graph. The per-file token rules
//!   already police sources *inside* sim-critical crates; this pass catches
//!   the helper in `obs` (or any other support crate) that a sim-critical
//!   crate calls into, reporting the full call chain.
//! * **panic-path audit** — `panic!`-family macros, `unwrap`/`expect`, and
//!   (directly in handlers) indexing, reachable from DES event handlers —
//!   fns that schedule kernel events or implement `ShardWorld::deliver`.
//!   Sites already audited with a justified `lint:allow(no-unwrap-in-lib)`
//!   are skipped silently: they were counted by the token rule's ledger.
//! * **lock-order** — mutexes acquired in opposite orders in two places.
//! * **relaxed-note-on-operation** — a `// relaxed:` note that satisfied the
//!   token rule's two-line window but does not bind to the line of the
//!   atomic operation it claims to justify.

use std::collections::BTreeMap;

use crate::allow::{collect_relaxed_notes, Allow};
use crate::diag::{Diagnostic, Note, RuleId};
use crate::rules::{hashmap_iteration_sites, FileKind, Scanner};
use crate::symgraph::{ParsedFile, SymbolGraph};
use crate::tokenizer::{Token, TokenKind};

/// Kernel methods whose callers are DES event handlers (the scheduled
/// closures live inside the scheduling fn, so calls inside them are
/// attributed to it by the parser).
const SCHEDULE_METHODS: &[&str] = &[
    "schedule",
    "schedule_in",
    "schedule_labeled",
    "schedule_in_labeled",
];

/// Atomic RMW / load / store operations a `// relaxed:` note must bind to.
const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Runs every structural pass; diagnostics are attributed to the file the
/// offending site lives in. The engine's allow layer runs afterwards.
#[must_use]
pub fn structural_passes(files: &[ParsedFile], graph: &SymbolGraph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    determinism_taint(files, graph, &mut out);
    panic_path(files, graph, &mut out);
    lock_order(files, graph, &mut out);
    relaxed_note_on_operation(files, &mut out);
    out
}

/// True when a justified allow for `rule` targets `line` in this file.
fn allowed_at(allows: &[Allow], rule: RuleId, line: u32) -> bool {
    allows
        .iter()
        .any(|a| a.justified && a.target_line == Some(line) && a.rules.contains(&rule))
}

/// Per-file helper: maps a source line to the innermost enclosing fn's
/// symbol id, using decl-line .. last-body-token-line ranges.
struct FnLocator {
    /// `(start_line, end_line, symbol_id)` per fn in this file.
    ranges: Vec<(u32, u32, usize)>,
}

impl FnLocator {
    fn new(file_idx: usize, pf: &ParsedFile, graph: &SymbolGraph) -> FnLocator {
        let mut ranges = Vec::new();
        for (id, s) in graph.symbols.iter().enumerate() {
            if s.file_idx != file_idx {
                continue;
            }
            let decl = &pf.ast.fns[s.fn_idx];
            let (b0, b1) = decl.body;
            let end = if b1 > b0 && b1 <= pf.tokens.len() {
                pf.tokens[b1 - 1].line
            } else {
                s.line
            };
            ranges.push((s.line, end, id));
        }
        FnLocator { ranges }
    }

    /// The innermost fn covering `line` (latest-starting covering range).
    fn locate(&self, line: u32) -> Option<usize> {
        self.ranges
            .iter()
            .filter(|(s, e, _)| *s <= line && line <= *e)
            .max_by_key(|(s, _, _)| *s)
            .map(|(_, _, id)| *id)
    }
}

/// One nondeterminism source site.
struct SourceSite {
    line: u32,
    col: u32,
    what: String,
}

/// Scans one file for taint sources. `include_randomness` gates the
/// hash-iteration / thread-identity sources (covered by token rules inside
/// sim-critical crates); pointer-to-int casts are collected everywhere.
fn taint_sources(pf: &ParsedFile, include_randomness: bool) -> Vec<SourceSite> {
    let scan = Scanner::new(&pf.tokens, pf.ctx.kind == FileKind::Test);
    let mut out = Vec::new();
    if include_randomness {
        for (i, what) in hashmap_iteration_sites(&scan) {
            if scan.in_test[i] {
                continue;
            }
            let t = scan.toks[i];
            out.push(SourceSite {
                line: t.line,
                col: t.col,
                what,
            });
        }
        for i in 0..scan.toks.len() {
            if scan.in_test[i] {
                continue;
            }
            if scan.ident_at(i, "current")
                && i >= 2
                && scan.ident_at(i - 2, "thread")
                && scan.punct_at(i - 1, "::")
                && scan.punct_at(i + 1, "(")
            {
                let t = scan.toks[i];
                out.push(SourceSite {
                    line: t.line,
                    col: t.col,
                    what: "`thread::current()` exposes OS-thread identity".into(),
                });
            }
        }
    }
    // Pointer-to-int casts: `… as usize` where the casted expression came
    // from `as_ptr`/`as_mut_ptr` or a raw-pointer cast a few tokens back.
    // Addresses vary per run under ASLR, so they are a randomness source.
    for i in 0..scan.toks.len() {
        if scan.in_test[i] || !scan.ident_at(i, "as") {
            continue;
        }
        let inty = scan.get(i + 1).is_some_and(|t| {
            t.is_ident("usize") || t.is_ident("u64") || t.is_ident("isize") || t.is_ident("i64")
        });
        if !inty {
            continue;
        }
        let window = i.saturating_sub(8)..i;
        let ptrish = window.clone().any(|k| {
            scan.ident_at(k, "as_ptr")
                || scan.ident_at(k, "as_mut_ptr")
                || (scan.punct_at(k, "*")
                    && (scan.ident_at(k + 1, "const") || scan.ident_at(k + 1, "mut")))
        });
        if ptrish {
            let t = scan.toks[i];
            out.push(SourceSite {
                line: t.line,
                col: t.col,
                what: "pointer-to-int cast (addresses vary per run under ASLR)".into(),
            });
        }
    }
    out
}

/// Reverse-BFS from each taint source over caller edges; report sources a
/// sim-critical crate's public API can reach, with the full chain.
fn determinism_taint(files: &[ParsedFile], graph: &SymbolGraph, out: &mut Vec<Diagnostic>) {
    for (file_idx, pf) in files.iter().enumerate() {
        if pf.ctx.kind == FileKind::Test {
            continue;
        }
        // Inside sim-critical crates the token rules already fire at these
        // sites; seeding them again would double-report.
        let include_randomness = !pf.ctx.sim_critical();
        let sources = taint_sources(pf, include_randomness);
        if sources.is_empty() {
            continue;
        }
        let locator = FnLocator::new(file_idx, pf, graph);
        for src in sources {
            if allowed_at(&pf.allows, RuleId::NoHashmapIteration, src.line)
                || allowed_at(&pf.allows, RuleId::NoThreadIdentity, src.line)
            {
                continue; // audited under the token rule's ledger
            }
            let Some(start) = locator.locate(src.line) else {
                continue; // top-level const/static expression: no call path
            };
            if graph.symbols[start].in_test {
                continue;
            }
            let Some(chain) = chain_to_sim_critical_pub(graph, start) else {
                continue;
            };
            let notes = chain_notes(graph, &chain, &src.what);
            out.push(Diagnostic {
                file: pf.ctx.rel_path.clone(),
                line: src.line,
                col: src.col,
                rule: RuleId::DeterminismTaint,
                message: format!(
                    "{} is reachable from sim-critical public API `{}`",
                    src.what,
                    graph.symbols[chain[0]].qualified()
                ),
                suggestion: suggestion(RuleId::DeterminismTaint),
                notes,
            });
        }
    }
}

/// BFS upward through callers from `start`; returns the chain
/// `[sink, …, start]` for the nearest public sim-critical sink, or `None`.
fn chain_to_sim_critical_pub(graph: &SymbolGraph, start: usize) -> Option<Vec<usize>> {
    let sink_ok = |id: usize| {
        let s = &graph.symbols[id];
        s.is_pub && !s.in_test && crate::rules::SIM_CRITICAL_CRATES.contains(&s.krate.as_str())
    };
    if sink_ok(start) {
        return Some(vec![start]);
    }
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([start]);
    let mut visited = vec![false; graph.symbols.len()];
    visited[start] = true;
    while let Some(id) = queue.pop_front() {
        for &caller in &graph.callers[id] {
            if visited[caller] || graph.symbols[caller].in_test {
                continue;
            }
            visited[caller] = true;
            parent.insert(caller, id);
            if sink_ok(caller) {
                // Walk back down: sink → … → start.
                let mut chain = vec![caller];
                let mut cur = caller;
                while cur != start {
                    cur = parent[&cur];
                    chain.push(cur);
                }
                return Some(chain);
            }
            queue.push_back(caller);
        }
    }
    None
}

/// Renders a `[sink, …, site_fn]` chain as diagnostic notes, one per hop.
fn chain_notes(graph: &SymbolGraph, chain: &[usize], what: &str) -> Vec<Note> {
    let mut notes = Vec::new();
    let sink = &graph.symbols[chain[0]];
    notes.push(Note {
        file: sink.file.clone(),
        line: sink.line,
        message: format!(
            "`{}` is a public API of sim-critical crate `{}`",
            sink.qualified(),
            sink.krate
        ),
    });
    for w in chain.windows(2) {
        let (src, dst) = (w[0], w[1]);
        let edge = graph.callees[src].iter().find(|e| e.to == dst);
        let line = edge.map_or(graph.symbols[src].line, |e| e.line);
        notes.push(Note {
            file: graph.symbols[src].file.clone(),
            line,
            message: format!("which calls `{}`", graph.symbols[dst].qualified()),
        });
    }
    let Some(&last_id) = chain.last() else {
        return notes;
    };
    let last = &graph.symbols[last_id];
    notes.push(Note {
        file: last.file.clone(),
        line: last.line,
        message: format!("`{}` contains the source: {}", last.qualified(), what),
    });
    notes
}

/// One potential panic site inside a fn body.
struct PanicSite {
    line: u32,
    col: u32,
    what: String,
    /// Indexing sites only count directly inside handler roots.
    is_indexing: bool,
}

/// Scans the body of one fn for panic sites (comment-filtered, test-aware).
fn panic_sites(pf: &ParsedFile, body: (usize, usize)) -> Vec<PanicSite> {
    let mut out = Vec::new();
    let toks: Vec<&Token> = pf.tokens[body.0..body.1]
        .iter()
        .filter(|t| !t.is_comment())
        .collect();
    let at = |k: usize| -> Option<&&Token> { toks.get(k) };
    for i in 0..toks.len() {
        let t = toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let next_bang = at(i + 1).is_some_and(|n| n.is_punct("!"));
        if next_bang && ["panic", "unreachable", "todo", "unimplemented"].contains(&t.text.as_str())
        {
            out.push(PanicSite {
                line: t.line,
                col: t.col,
                what: format!("`{}!` aborts the shard", t.text),
                is_indexing: false,
            });
            continue;
        }
        let after_dot = i >= 1 && toks[i - 1].is_punct(".");
        if after_dot && t.is_ident("unwrap") && at(i + 1).is_some_and(|n| n.is_punct("(")) {
            out.push(PanicSite {
                line: t.line,
                col: t.col,
                what: "`.unwrap()` panics on the error path".into(),
                is_indexing: false,
            });
        }
        if after_dot
            && t.is_ident("expect")
            && at(i + 1).is_some_and(|n| n.is_punct("("))
            && !(i >= 2 && toks[i - 2].is_ident("self"))
        {
            out.push(PanicSite {
                line: t.line,
                col: t.col,
                what: "`.expect(…)` panics on the error path".into(),
                is_indexing: false,
            });
        }
        // `name[…]` indexing — panics when out of bounds. Direct-only: the
        // caller filters these to handler roots. Plain id-lookup indexing
        // (`pools[p]`, `peers[self.leader]`) is the arena idiom this
        // workspace is built on — ids are constructed valid — so only
        // *computed* indexes (literals, arithmetic, nesting, calls) are
        // reported; those are where off-by-one and empty-slice panics live.
        if at(i + 1).is_some_and(|n| n.is_punct("["))
            && !at(i + 2).is_some_and(|n| n.is_punct("]"))
            && !index_is_plain_path(&toks, i + 1)
        {
            out.push(PanicSite {
                line: t.line,
                col: t.col,
                what: format!("`{}[…]` computed-index panics when out of bounds", t.text),
                is_indexing: true,
            });
        }
    }
    out
}

/// True when the bracketed index expression starting at the `[` at `open`
/// is a plain path — idents joined by `.` (including `self`), nothing
/// computed. `xs[p]` and `xs[self.leader]` are plain; `xs[0]`, `xs[i + 1]`,
/// `xs[ids[k]]`, and `xs[f(k)]` are not.
fn index_is_plain_path(toks: &[&Token], open: usize) -> bool {
    debug_assert!(toks[open].is_punct("["));
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("[") {
            depth += 1;
            if depth > 1 {
                return false; // nested indexing is computed
            }
            continue;
        }
        if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return k > open + 1; // non-empty index expression
            }
            continue;
        }
        let plain = t.kind == TokenKind::Ident || t.is_punct(".");
        if !plain {
            return false;
        }
    }
    false // unbalanced: treat as computed
}

/// Forward BFS from DES handler roots; reports reachable panic sites.
fn panic_path(files: &[ParsedFile], graph: &SymbolGraph, out: &mut Vec<Diagnostic>) {
    // Roots: ShardWorld impl methods and fns that schedule kernel events —
    // in sim-critical crates only, outside tests.
    let mut roots = Vec::new();
    for (id, s) in graph.symbols.iter().enumerate() {
        if s.in_test || !crate::rules::SIM_CRITICAL_CRATES.contains(&s.krate.as_str()) {
            continue;
        }
        let decl = &files[s.file_idx].ast.fns[s.fn_idx];
        let is_deliver = s.trait_name.as_deref() == Some("ShardWorld");
        let schedules = decl
            .calls
            .iter()
            .any(|c| c.is_method && SCHEDULE_METHODS.contains(&c.path[0].as_str()));
        if is_deliver || schedules {
            roots.push(id);
        }
    }
    // BFS with parent pointers; first reach wins (shortest chain).
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut visited = vec![false; graph.symbols.len()];
    let mut queue: std::collections::VecDeque<usize> = roots.iter().copied().collect();
    for &r in &roots {
        visited[r] = true;
    }
    while let Some(id) = queue.pop_front() {
        for e in &graph.callees[id] {
            if visited[e.to] || graph.symbols[e.to].in_test {
                continue;
            }
            visited[e.to] = true;
            parent.insert(e.to, id);
            queue.push_back(e.to);
        }
    }
    let is_root = |id: usize| roots.contains(&id);
    for (id, &reached) in visited.iter().enumerate() {
        if !reached {
            continue;
        }
        let s = &graph.symbols[id];
        let pf = &files[s.file_idx];
        if pf.ctx.kind == FileKind::Test {
            continue;
        }
        let decl = &pf.ast.fns[s.fn_idx];
        for site in panic_sites(pf, decl.body) {
            if site.is_indexing && !is_root(id) {
                continue; // transitive indexing would drown the report
            }
            if allowed_at(&pf.allows, RuleId::NoUnwrapInLib, site.line) {
                continue; // audited under the token rule's ledger
            }
            // Chain: root → … → this fn.
            let mut chain = vec![id];
            let mut cur = id;
            while let Some(&p) = parent.get(&cur) {
                chain.push(p);
                cur = p;
            }
            chain.reverse();
            let root = &graph.symbols[chain[0]];
            let mut notes = vec![Note {
                file: root.file.clone(),
                line: root.line,
                message: format!(
                    "`{}` is a DES event handler ({})",
                    root.qualified(),
                    if root.trait_name.as_deref() == Some("ShardWorld") {
                        "implements ShardWorld::deliver"
                    } else {
                        "schedules kernel events"
                    }
                ),
            }];
            for w in chain.windows(2) {
                let (src, dst) = (w[0], w[1]);
                let edge = graph.callees[src].iter().find(|e| e.to == dst);
                let line = edge.map_or(graph.symbols[src].line, |e| e.line);
                notes.push(Note {
                    file: graph.symbols[src].file.clone(),
                    line,
                    message: format!("which calls `{}`", graph.symbols[dst].qualified()),
                });
            }
            out.push(Diagnostic {
                file: pf.ctx.rel_path.clone(),
                line: site.line,
                col: site.col,
                rule: RuleId::PanicPath,
                message: format!(
                    "{} and is reachable from DES event handler `{}`",
                    site.what,
                    graph.symbols[chain[0]].qualified()
                ),
                suggestion: suggestion(RuleId::PanicPath),
                notes,
            });
        }
    }
}

/// One mutex acquisition inside a fn, in body token order.
struct LockAcq {
    name: String,
    line: u32,
    col: u32,
}

/// Collects `<recv>.lock()` acquisitions in body order for one fn.
fn lock_acquisitions(pf: &ParsedFile, body: (usize, usize)) -> Vec<LockAcq> {
    let toks: Vec<&Token> = pf.tokens[body.0..body.1]
        .iter()
        .filter(|t| !t.is_comment())
        .collect();
    let mut out = Vec::new();
    for i in 2..toks.len() {
        if !(toks[i].is_ident("lock")
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("(")))
        {
            continue;
        }
        // The receiver is the ident just before the dot (`self.a.lock()`
        // names the field, `REGISTRY.lock()` the static).
        if toks[i - 2].kind == TokenKind::Ident && !toks[i - 2].is_ident("self") {
            out.push(LockAcq {
                name: toks[i - 2].ident_name().to_string(),
                line: toks[i].line,
                col: toks[i].col,
            });
        }
    }
    out
}

/// Detects inconsistent pairwise mutex acquisition order across the
/// workspace (intra-fn sequences only — conservative, no drop tracking).
fn lock_order(files: &[ParsedFile], graph: &SymbolGraph, out: &mut Vec<Diagnostic>) {
    // (first, second) → earliest witness site of that acquisition order.
    let mut edges: BTreeMap<(String, String), (String, u32, u32)> = BTreeMap::new();
    for s in &graph.symbols {
        if s.in_test {
            continue;
        }
        let pf = &files[s.file_idx];
        if pf.ctx.kind == FileKind::Test {
            continue;
        }
        let acqs = lock_acquisitions(pf, pf.ast.fns[s.fn_idx].body);
        for i in 0..acqs.len() {
            for j in i + 1..acqs.len() {
                if acqs[i].name == acqs[j].name {
                    continue;
                }
                edges
                    .entry((acqs[i].name.clone(), acqs[j].name.clone()))
                    .or_insert((pf.ctx.rel_path.clone(), acqs[j].line, acqs[j].col));
            }
        }
    }
    for ((a, b), (file, line, col)) in &edges {
        if a < b {
            continue; // visit each unordered pair once, from its b→a edge
        }
        if let Some((ofile, oline, _)) = edges.get(&(b.clone(), a.clone())) {
            out.push(Diagnostic {
                file: file.clone(),
                line: *line,
                col: *col,
                rule: RuleId::LockOrder,
                message: format!(
                    "mutex `{a}` is acquired before `{b}` here, but the opposite order \
                     exists elsewhere; inconsistent order can deadlock"
                ),
                suggestion: suggestion(RuleId::LockOrder),
                notes: vec![Note {
                    file: ofile.clone(),
                    line: *oline,
                    message: format!("`{b}` is acquired before `{a}` here"),
                }],
            });
        }
    }
}

/// Verifies each annotated `Ordering::Relaxed` binds its `// relaxed:` note
/// to the atomic operation's own line, not merely somewhere nearby.
fn relaxed_note_on_operation(files: &[ParsedFile], out: &mut Vec<Diagnostic>) {
    for pf in files {
        if pf.ctx.kind == FileKind::Test {
            continue;
        }
        let notes = collect_relaxed_notes(&pf.tokens);
        if notes.is_empty() {
            continue;
        }
        let scan = Scanner::new(&pf.tokens, false);
        for i in 0..scan.toks.len() {
            if scan.in_test[i]
                || !(scan.ident_at(i, "Ordering")
                    && scan.punct_at(i + 1, "::")
                    && scan.ident_at(i + 2, "Relaxed"))
            {
                continue;
            }
            let relaxed = scan.toks[i + 2];
            if allowed_at(&pf.allows, RuleId::AtomicsOrderingAnnotated, relaxed.line) {
                continue;
            }
            // Find the atomic operation this ordering parameterizes: the
            // nearest preceding `.op(` within a small window.
            let mut op_line = None;
            for back in 1..=40 {
                let Some(k) = i.checked_sub(back) else { break };
                if scan.toks[k].kind == TokenKind::Ident
                    && ATOMIC_OPS.contains(&scan.toks[k].text.as_str())
                    && k >= 1
                    && scan.punct_at(k - 1, ".")
                    && scan.punct_at(k + 1, "(")
                {
                    op_line = Some(scan.toks[k].line);
                    break;
                }
            }
            let Some(op_line) = op_line else { continue };
            let near = notes.iter().any(|n| {
                n.target_line
                    .is_some_and(|t| t <= relaxed.line && t + 2 >= relaxed.line)
            });
            if !near {
                continue; // the token rule already reported the bare site
            }
            let on_op = notes.iter().any(|n| n.target_line == Some(op_line));
            if !on_op {
                out.push(Diagnostic {
                    file: pf.ctx.rel_path.clone(),
                    line: relaxed.line,
                    col: relaxed.col,
                    rule: RuleId::RelaxedNoteOnOperation,
                    message: "the `// relaxed:` note near this Relaxed ordering does not \
                              bind to the atomic operation's line"
                        .into(),
                    suggestion: suggestion(RuleId::RelaxedNoteOnOperation),
                    notes: vec![Note {
                        file: pf.ctx.rel_path.clone(),
                        line: op_line,
                        message: "the atomic operation is here".into(),
                    }],
                });
            }
        }
    }
}

/// The structural rules reuse the token rules' canonical remedies.
fn suggestion(rule: RuleId) -> Option<String> {
    crate::rules::suggestion_for(rule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symgraph::parse_sources;

    fn run(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let files = parse_sources(sources);
        let graph = SymbolGraph::build(&files);
        structural_passes(&files, &graph)
    }

    #[test]
    fn cross_crate_hashmap_taint_reports_full_chain() {
        let diags = run(&[
            (
                "crates/obs/src/agg.rs",
                "use std::collections::HashMap;\n\
                 pub fn summarize(m: &HashMap<u32, u32>) -> u32 {\n\
                 \x20   let mut total = 0;\n\
                 \x20   for v in m.values() { total += v; }\n\
                 \x20   total\n\
                 }\n",
            ),
            (
                "crates/core/src/sim.rs",
                "use fabricsim_obs::agg::summarize;\n\
                 pub fn tick(m: &std::collections::HashMap<u32, u32>) -> u32 {\n\
                 \x20   summarize(m)\n\
                 }\n",
            ),
        ]);
        let taints: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.rule == RuleId::DeterminismTaint)
            .collect();
        assert_eq!(taints.len(), 1, "{diags:?}");
        let d = taints[0];
        assert_eq!(d.file, "crates/obs/src/agg.rs");
        assert_eq!(d.line, 4);
        assert!(d.message.contains("fabricsim_core::sim::tick"));
        // Chain notes: sink decl, call hop, source fn.
        assert!(d.notes.len() >= 3, "{:?}", d.notes);
        assert_eq!(d.notes[0].file, "crates/core/src/sim.rs");
        assert!(d.notes[0].message.contains("public API"));
        assert!(d.notes[1].message.contains("summarize"));
        assert_eq!(d.notes[1].line, 3, "hop note points at the call site");
    }

    #[test]
    fn unreachable_helper_is_not_tainted() {
        let diags = run(&[(
            "crates/obs/src/agg.rs",
            "use std::collections::HashMap;\n\
             fn private_summarize(m: &HashMap<u32, u32>) -> u32 {\n\
             \x20   m.values().sum()\n\
             }\n",
        )]);
        assert!(
            diags.iter().all(|d| d.rule != RuleId::DeterminismTaint),
            "{diags:?}"
        );
    }

    #[test]
    fn audited_source_is_skipped_silently() {
        let diags = run(&[
            (
                "crates/obs/src/agg.rs",
                "use std::collections::HashMap;\n\
                 pub fn summarize(m: &HashMap<u32, u32>) -> u32 {\n\
                 \x20   // lint:allow(no-hashmap-iteration) -- summed, order cannot escape\n\
                 \x20   m.values().sum()\n\
                 }\n",
            ),
            (
                "crates/core/src/sim.rs",
                "use fabricsim_obs::agg::summarize;\n\
                 pub fn tick(m: &std::collections::HashMap<u32, u32>) -> u32 { summarize(m) }\n",
            ),
        ]);
        assert!(
            diags.iter().all(|d| d.rule != RuleId::DeterminismTaint),
            "{diags:?}"
        );
    }

    #[test]
    fn pointer_to_int_cast_is_a_source_even_in_sim_crates() {
        let diags = run(&[(
            "crates/core/src/sim.rs",
            "pub fn key_of(v: &[u8]) -> usize {\n    v.as_ptr() as usize\n}\n",
        )]);
        let taints: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.rule == RuleId::DeterminismTaint)
            .collect();
        assert_eq!(taints.len(), 1, "{diags:?}");
        assert!(taints[0].message.contains("pointer-to-int"));
    }

    #[test]
    fn panic_reachable_from_deliver_is_reported_with_chain() {
        let diags = run(&[(
            "crates/core/src/world.rs",
            "impl ShardWorld for World {\n\
             \x20   fn deliver(&mut self, at: u64, msg: u64) {\n\
             \x20       step(msg);\n\
             \x20   }\n\
             }\n\
             fn step(m: u64) {\n\
             \x20   helper(m);\n\
             }\n\
             fn helper(m: u64) {\n\
             \x20   if m > 3 { panic!(\"bad msg\"); }\n\
             }\n",
        )]);
        let panics: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.rule == RuleId::PanicPath)
            .collect();
        assert_eq!(panics.len(), 1, "{diags:?}");
        let d = panics[0];
        assert_eq!(d.line, 10);
        assert!(d.message.contains("deliver"));
        assert!(d.notes[0].message.contains("ShardWorld::deliver"));
        assert!(d.notes.iter().any(|n| n.message.contains("helper")));
    }

    #[test]
    fn indexing_counts_only_directly_in_handlers() {
        let diags = run(&[(
            "crates/core/src/world.rs",
            "pub fn arm(kernel: &mut Kernel, xs: &[u64]) {\n\
             \x20   let first = xs[0];\n\
             \x20   kernel.schedule(first, move || deep(first));\n\
             }\n\
             fn deep(v: u64) {\n\
             \x20   let ys = [1u64, 2];\n\
             \x20   let _ = ys[(v % 2) as usize];\n\
             }\n",
        )]);
        let panics: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.rule == RuleId::PanicPath)
            .collect();
        assert_eq!(panics.len(), 1, "{diags:?}");
        assert_eq!(panics[0].line, 2, "only the direct indexing in the root");
    }

    #[test]
    fn unwrap_with_justified_allow_is_silently_audited() {
        let diags = run(&[(
            "crates/core/src/world.rs",
            "impl ShardWorld for World {\n\
             \x20   fn deliver(&mut self, at: u64, msg: u64) {\n\
             \x20       // lint:allow(no-unwrap-in-lib) -- queue is non-empty: pushed above\n\
             \x20       self.q.pop().unwrap();\n\
             \x20   }\n\
             }\n",
        )]);
        assert!(
            diags.iter().all(|d| d.rule != RuleId::PanicPath),
            "{diags:?}"
        );
    }

    #[test]
    fn opposite_lock_orders_are_reported_once_with_witness() {
        let diags = run(&[(
            "crates/des/src/pool.rs",
            "fn a(&self) {\n\
             \x20   let _x = self.foo.lock();\n\
             \x20   let _y = self.bar.lock();\n\
             }\n\
             fn b(&self) {\n\
             \x20   let _y = self.bar.lock();\n\
             \x20   let _x = self.foo.lock();\n\
             }\n",
        )]);
        let locks: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.rule == RuleId::LockOrder)
            .collect();
        assert_eq!(locks.len(), 1, "{diags:?}");
        assert_eq!(locks[0].notes.len(), 1);
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let diags = run(&[(
            "crates/des/src/pool.rs",
            "fn a(&self) {\n\
             \x20   let _x = self.foo.lock();\n\
             \x20   let _y = self.bar.lock();\n\
             }\n\
             fn b(&self) {\n\
             \x20   let _x = self.foo.lock();\n\
             \x20   let _y = self.bar.lock();\n\
             }\n",
        )]);
        assert!(
            diags.iter().all(|d| d.rule != RuleId::LockOrder),
            "{diags:?}"
        );
    }

    #[test]
    fn relaxed_note_must_sit_on_the_operation_line() {
        // Note binds to the `self.hits` continuation line, not the
        // `fetch_add` line — accepted by the token rule's window, rejected
        // by the structural pass.
        let diags = run(&[(
            "crates/obs/src/reg.rs",
            "impl R {\n\
             \x20   fn bump(&self) {\n\
             \x20       self.hits.fetch_add(\n\
             \x20           1,\n\
             \x20           Ordering::Relaxed, // relaxed: monotonic counter\n\
             \x20       );\n\
             \x20   }\n\
             }\n",
        )]);
        let rel: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.rule == RuleId::RelaxedNoteOnOperation)
            .collect();
        assert_eq!(rel.len(), 1, "{diags:?}");
        assert_eq!(rel[0].notes[0].line, 3, "points at the fetch_add line");
    }

    #[test]
    fn relaxed_note_on_the_operation_is_clean() {
        let diags = run(&[(
            "crates/obs/src/reg.rs",
            "impl R {\n\
             \x20   fn bump(&self) {\n\
             \x20       self.hits.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic\n\
             \x20   }\n\
             }\n",
        )]);
        assert!(
            diags
                .iter()
                .all(|d| d.rule != RuleId::RelaxedNoteOnOperation),
            "{diags:?}"
        );
    }
}
