//! A comment/string/char-literal-aware Rust tokenizer.
//!
//! This is *not* a full Rust lexer: it produces exactly the token stream the
//! lint rules need — identifiers, numeric literals (with float detection),
//! the four string-literal families, char literals vs lifetimes, comments
//! (kept, because `lint:allow` annotations live in them) and maximal-munch
//! punctuation — with a 1-based `line:col` position on every token. The
//! corner cases that matter for soundness are handled precisely:
//!
//! * raw strings `r"…"` / `r#"…"#` with any number of hashes (and the
//!   byte-string variants `b"…"`, `br#"…"#`), so a `HashMap` mentioned
//!   inside a string never reaches a rule;
//! * nested block comments `/* /* */ */`, per the Rust reference;
//! * char literals vs lifetimes: `'a'` is a char, `'a` is a lifetime,
//!   `'"'` and `'\''` are chars;
//! * raw identifiers: `r#type` is one `Ident` token (text `r#type`), not an
//!   `r` identifier followed by punctuation;
//! * float literals vs ranges vs integer method calls: `1.0` is a float,
//!   `1..2` is an int and a range, `1.max(2)` is an int, a dot and an ident.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (any base, with suffix).
    Int,
    /// Float literal (has a fractional part, an exponent, or an `f32`/`f64`
    /// suffix).
    Float,
    /// Any string literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Char or byte-char literal: `'x'`, `'\n'`, `b'x'`, `'"'`.
    Char,
    /// Lifetime: `'a`, `'static`, `'_`.
    Lifetime,
    /// `// …` (text includes the slashes, excludes the newline).
    LineComment,
    /// `/* … */` (text includes the delimiters; nesting respected).
    BlockComment,
    /// Operator or delimiter, maximal munch (`==`, `::`, `..=`, `{`, …).
    Punct,
}

/// One token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
}

impl Token {
    /// True when this token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True when this token is the punctuation `s`.
    #[must_use]
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }

    /// True for comment tokens (which most rules skip over).
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// The identifier's name with any `r#` raw prefix stripped (so `r#type`
    /// names the symbol `type`); the raw text for every other token kind.
    #[must_use]
    pub fn ident_name(&self) -> &str {
        if self.kind == TokenKind::Ident {
            if let Some(rest) = self.text.strip_prefix("r#") {
                return rest;
            }
        }
        &self.text
    }
}

/// Multi-character operators, longest first (maximal munch).
const OPERATORS: &[&str] = &[
    "..=", "<<=", ">>=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

struct Lexer<'a> {
    chars: Vec<char>,
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            src,
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking line/col.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn token(&self, kind: TokenKind, start: usize, line: u32, col: u32) -> Token {
        Token {
            kind,
            text: self.chars[start..self.pos].iter().collect(),
            line,
            col,
        }
    }

    /// `//` to end of line.
    fn line_comment(&mut self, start: usize, line: u32, col: u32) -> Token {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        self.token(TokenKind::LineComment, start, line, col)
    }

    /// `/* … */` with nesting.
    fn block_comment(&mut self, start: usize, line: u32, col: u32) -> Token {
        self.bump_n(2); // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: tolerate, end at EOF
            }
        }
        self.token(TokenKind::BlockComment, start, line, col)
    }

    /// A `"…"` body with escapes; the opening quote is already consumed.
    fn string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // the escaped char, whatever it is
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// A raw-string body `#*"…"#*`; `self.pos` sits on the first `#` or `"`.
    /// Returns false if this is not actually a raw string opener.
    fn raw_string_body(&mut self) -> bool {
        let mut hashes = 0usize;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(hashes) != Some('"') {
            return false;
        }
        self.bump_n(hashes + 1); // hashes and the opening quote
        loop {
            match self.bump() {
                None => break, // unterminated: tolerate
                Some('"') => {
                    let mut matched = 0usize;
                    while matched < hashes && self.peek(matched) == Some('#') {
                        matched += 1;
                    }
                    if matched == hashes {
                        self.bump_n(hashes);
                        break;
                    }
                }
                Some(_) => {}
            }
        }
        true
    }

    /// Char literal vs lifetime; the opening `'` is already consumed.
    fn char_or_lifetime(&mut self, start: usize, line: u32, col: u32) -> Token {
        match self.peek(0) {
            // `'\n'`, `'\''`, `'\u{1F600}'` — escape means char literal.
            Some('\\') => {
                loop {
                    match self.bump() {
                        // Closing quote, or unterminated at EOF: tolerate.
                        None | Some('\'') => break,
                        Some('\\') => {
                            self.bump(); // the escaped char is never a closer
                        }
                        Some(_) => {}
                    }
                }
                self.token(TokenKind::Char, start, line, col)
            }
            // `'a'` is a char, `'a` / `'static` / `'_` are lifetimes.
            Some(c) if is_ident_start(c) => {
                let mut len = 1;
                while self.peek(len).is_some_and(is_ident_continue) {
                    len += 1;
                }
                if self.peek(len) == Some('\'') {
                    self.bump_n(len + 1);
                    self.token(TokenKind::Char, start, line, col)
                } else {
                    self.bump_n(len);
                    self.token(TokenKind::Lifetime, start, line, col)
                }
            }
            // `'"'`, `'+'`, `'∞'` — any single char followed by a quote.
            Some(_) if self.peek(1) == Some('\'') => {
                self.bump_n(2);
                self.token(TokenKind::Char, start, line, col)
            }
            // A stray quote (invalid Rust); emit as punctuation and move on.
            _ => self.token(TokenKind::Punct, start, line, col),
        }
    }

    /// A numeric literal; the first digit is already consumed.
    fn number(&mut self, start: usize, line: u32, col: u32, first: char) -> Token {
        let mut is_float = false;
        // Non-decimal bases cannot be floats and take no exponent.
        if first == '0' && matches!(self.peek(0), Some('x' | 'X' | 'b' | 'B' | 'o' | 'O')) {
            self.bump();
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                self.bump();
            }
            return self.token(TokenKind::Int, start, line, col);
        }
        let digits = |lex: &mut Self| {
            while lex.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                lex.bump();
            }
        };
        digits(self);
        // Fractional part only when a digit follows the dot: `1.0` yes,
        // `1..2` and `1.max(2)` no.
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            digits(self);
        }
        // Exponent: `1e3`, `1.5e-3` — only when digits follow.
        if matches!(self.peek(0), Some('e' | 'E')) {
            let sign = usize::from(matches!(self.peek(1), Some('+' | '-')));
            if self.peek(1 + sign).is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                self.bump_n(1 + sign);
                digits(self);
            }
        }
        // Type suffix: `1u32`, `1f64`.
        if self.peek(0).is_some_and(is_ident_start) {
            let suffix_start = self.pos;
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
            let suffix: String = self.chars[suffix_start..self.pos].iter().collect();
            if suffix == "f32" || suffix == "f64" {
                is_float = true;
            }
        }
        let kind = if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.token(kind, start, line, col)
    }

    /// `r"…"`/`r#"…"#`/`b"…"`/`br#"…"#`/`b'x'` prefixes; falls back to a
    /// plain identifier when the lookahead does not open a literal.
    fn maybe_prefixed_literal(&mut self, start: usize, line: u32, col: u32) -> Token {
        let first = self.chars[start];
        let (skip, kind) = match first {
            'r' => (0usize, TokenKind::Str),
            'b' => match self.peek(0) {
                Some('r') => (1, TokenKind::Str),
                Some('\'') => {
                    // byte char `b'x'`
                    self.bump(); // the quote
                    let tok = self.char_or_lifetime(start, line, col);
                    return Token {
                        kind: TokenKind::Char,
                        ..tok
                    };
                }
                Some('"') => {
                    self.bump();
                    self.string_body();
                    return self.token(TokenKind::Str, start, line, col);
                }
                _ => return self.ident_rest(start, line, col),
            },
            _ => return self.ident_rest(start, line, col),
        };
        // `r`/`br`: raw string only if `#*"` follows.
        let mut hashes = 0usize;
        while self.peek(skip + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(skip + hashes) == Some('"') {
            self.bump_n(skip);
            if self.raw_string_body() {
                return self.token(kind, start, line, col);
            }
        }
        // Raw identifier `r#type`: exactly one hash, then an identifier.
        if first == 'r'
            && hashes == 1
            && self.peek(0) == Some('#')
            && self.peek(1).is_some_and(is_ident_start)
        {
            self.bump(); // the `#`
            self.bump(); // first identifier char
            return self.ident_rest(start, line, col);
        }
        self.ident_rest(start, line, col)
    }

    /// Continues an identifier whose first char is consumed.
    fn ident_rest(&mut self, start: usize, line: u32, col: u32) -> Token {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        self.token(TokenKind::Ident, start, line, col)
    }

    fn punct(&mut self, start: usize, line: u32, col: u32) -> Token {
        for op in OPERATORS {
            let len = op.chars().count();
            if self.pos + len - 1 <= self.chars.len() {
                let got: String = self.chars[start..start + len].iter().collect();
                if got == **op {
                    self.bump_n(len - 1); // first char already consumed
                    return self.token(TokenKind::Punct, start, line, col);
                }
            }
        }
        self.token(TokenKind::Punct, start, line, col)
    }
}

/// Tokenizes `src`. Never fails: malformed input degrades to punctuation
/// tokens rather than aborting the lint of the rest of the file.
#[must_use]
pub fn tokenize(src: &str) -> Vec<Token> {
    let mut lex = Lexer::new(src);
    let mut out = Vec::with_capacity(src.len() / 4);
    // A UTF-8 BOM at the very start is not part of any token.
    if lex.src.starts_with('\u{feff}') {
        lex.bump();
    }
    while let Some(c) = lex.peek(0) {
        let (start, line, col) = (lex.pos, lex.line, lex.col);
        if c.is_whitespace() {
            lex.bump();
            continue;
        }
        let tok = match c {
            '/' if lex.peek(1) == Some('/') => {
                lex.bump();
                lex.line_comment(start, line, col)
            }
            '/' if lex.peek(1) == Some('*') => lex.block_comment(start, line, col),
            '"' => {
                lex.bump();
                lex.string_body();
                lex.token(TokenKind::Str, start, line, col)
            }
            '\'' => {
                lex.bump();
                lex.char_or_lifetime(start, line, col)
            }
            'r' | 'b' => {
                lex.bump();
                lex.maybe_prefixed_literal(start, line, col)
            }
            c if c.is_ascii_digit() => {
                lex.bump();
                lex.number(start, line, col, c)
            }
            c if is_ident_start(c) => {
                lex.bump();
                lex.ident_rest(start, line, col)
            }
            _ => {
                lex.bump();
                lex.punct(start, line, col)
            }
        };
        out.push(tok);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_punct() {
        let toks = tokenize("let x = a == b;");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["let", "x", "=", "a", "==", "b", ";"]);
        assert!(toks[4].is_punct("=="));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = tokenize("a\n  bb\n");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn line_and_nested_block_comments() {
        let toks = kinds("x // tail HashMap\ny /* a /* nested */ still */ z");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "x".into()),
                (TokenKind::LineComment, "// tail HashMap".into()),
                (TokenKind::Ident, "y".into()),
                (TokenKind::BlockComment, "/* a /* nested */ still */".into()),
                (TokenKind::Ident, "z".into()),
            ]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"f("Instant::now == 1.0 // not a comment")"#);
        assert_eq!(toks.len(), 4); // f ( "…" )
        assert_eq!(toks[2].0, TokenKind::Str);
    }

    #[test]
    fn string_escapes_do_not_end_early() {
        let toks = kinds(r#""a\"b" x"#);
        assert_eq!(toks[0], (TokenKind::Str, "\"a\\\"b\"".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "x".into()));
    }

    #[test]
    #[allow(clippy::needless_raw_string_hashes)] // outer hashes ARE the fixture
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"r#"quote " inside"# y"###);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[1], (TokenKind::Ident, "y".into()));
        // Zero-hash raw string.
        let toks = kinds(r#"r"plain" z"#);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[1], (TokenKind::Ident, "z".into()));
        // Two hashes, embedded single hash terminator candidates.
        let toks = kinds(r####"r##"a "# b"## w"####);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[1], (TokenKind::Ident, "w".into()));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        assert_eq!(kinds(r#"b"bytes""#)[0].0, TokenKind::Str);
        assert_eq!(kinds(r##"br#"raw bytes"#"##)[0].0, TokenKind::Str);
        assert_eq!(kinds("b'x'")[0].0, TokenKind::Char);
        // `b` and `r` alone stay identifiers.
        assert_eq!(kinds("b + r")[0].0, TokenKind::Ident);
        assert_eq!(kinds("radius")[0], (TokenKind::Ident, "radius".into()));
        assert_eq!(kinds("breaks")[0], (TokenKind::Ident, "breaks".into()));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        assert_eq!(kinds("'a'")[0].0, TokenKind::Char);
        assert_eq!(kinds("'\\''")[0].0, TokenKind::Char);
        assert_eq!(kinds("'\"'")[0].0, TokenKind::Char); // the tricky one
        assert_eq!(kinds("'\\u{1F600}'")[0].0, TokenKind::Char);
        assert_eq!(kinds("&'a str")[1].0, TokenKind::Lifetime);
        assert_eq!(kinds("'static")[0].0, TokenKind::Lifetime);
        assert_eq!(kinds("'_")[0].0, TokenKind::Lifetime);
        // A lifetime then a char on the same line.
        let toks = kinds("<'a> 'x'");
        assert_eq!(toks[1].0, TokenKind::Lifetime);
        assert_eq!(toks[3].0, TokenKind::Char);
    }

    #[test]
    fn numbers_floats_ranges_and_methods() {
        assert_eq!(kinds("1.0")[0].0, TokenKind::Float);
        assert_eq!(kinds("1.5e-3")[0].0, TokenKind::Float);
        assert_eq!(kinds("2e8")[0].0, TokenKind::Float);
        assert_eq!(kinds("3f64")[0].0, TokenKind::Float);
        assert_eq!(kinds("1_000")[0].0, TokenKind::Int);
        assert_eq!(kinds("0xFF_u8")[0].0, TokenKind::Int);
        assert_eq!(kinds("0b1010")[0].0, TokenKind::Int);
        // `1..2` is Int, `..`, Int — not a float.
        let toks = kinds("1..2");
        assert_eq!(toks[0].0, TokenKind::Int);
        assert_eq!(toks[1], (TokenKind::Punct, "..".into()));
        assert_eq!(toks[2].0, TokenKind::Int);
        // `1.max(2)` is Int, `.`, Ident.
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0].0, TokenKind::Int);
        assert_eq!(toks[1], (TokenKind::Punct, ".".into()));
        assert_eq!(toks[2], (TokenKind::Ident, "max".into()));
    }

    #[test]
    fn maximal_munch_operators() {
        let toks = kinds("a..=b x != y c::d");
        assert!(toks.iter().any(|t| t == &(TokenKind::Punct, "..=".into())));
        assert!(toks.iter().any(|t| t == &(TokenKind::Punct, "!=".into())));
        assert!(toks.iter().any(|t| t == &(TokenKind::Punct, "::".into())));
    }

    #[test]
    fn unterminated_inputs_do_not_hang_or_panic() {
        let _ = tokenize("/* never closed");
        let _ = tokenize("\"never closed");
        let _ = tokenize("r#\"never closed");
        let _ = tokenize("'");
    }
}
