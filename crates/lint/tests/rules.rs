//! Per-rule fixture tests: every rule has a positive (violating) and a
//! negative (clean) fixture under `tests/fixtures/<rule>/`, and the positive
//! one must be reported at the exact `file:line:col` asserted here.
//!
//! Fixtures are fed through [`fabricsim_lint::lint_source`] with a synthetic
//! sim-critical context (the engine's workspace walk skips `fixtures/`
//! directories by design, so the violating files can live in-tree without
//! tripping the self-check).

use fabricsim_lint::{classify, lint_source, Diagnostic, RuleId};

/// Reads `tests/fixtures/<rule>/<file>` from the crate directory.
fn fixture(rule: &str, file: &str) -> String {
    let path = format!(
        "{}/tests/fixtures/{rule}/{file}",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Lints a fixture as if it were library code in a sim-critical crate.
fn lint_as_core_lib(rule: &str, file: &str) -> (Vec<Diagnostic>, usize) {
    let ctx = classify("crates/core/src/fixture_under_test.rs").expect("classifiable");
    lint_source(&ctx, &fixture(rule, file))
}

/// Lints a fixture as a crate root (`crates/*/src/lib.rs`).
fn lint_as_crate_root(rule: &str, file: &str) -> (Vec<Diagnostic>, usize) {
    let ctx = classify("crates/core/src/lib.rs").expect("classifiable");
    lint_source(&ctx, &fixture(rule, file))
}

/// `(line, col, rule)` triples, sorted, for compact assertions.
fn locs(diags: &[Diagnostic]) -> Vec<(u32, u32, RuleId)> {
    diags.iter().map(|d| (d.line, d.col, d.rule)).collect()
}

#[test]
fn no_wall_clock_positive() {
    let (diags, _) = lint_as_core_lib("no-wall-clock", "bad.rs");
    assert_eq!(
        locs(&diags),
        vec![(4, 13, RuleId::NoWallClock), (9, 26, RuleId::NoWallClock),]
    );
}

#[test]
fn no_wall_clock_negative_and_test_exempt() {
    let (diags, suppressed) = lint_as_core_lib("no-wall-clock", "good.rs");
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(suppressed, 0);
}

#[test]
fn no_hashmap_iteration_positive() {
    let (diags, _) = lint_as_core_lib("no-hashmap-iteration", "bad.rs");
    assert_eq!(
        locs(&diags),
        vec![
            (5, 20, RuleId::NoHashmapIteration),
            (12, 5, RuleId::NoHashmapIteration),
        ]
    );
}

#[test]
fn no_hashmap_iteration_negative() {
    // BTreeMap iteration and point lookups on a HashMap are both fine.
    let (diags, _) = lint_as_core_lib("no-hashmap-iteration", "good.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn no_hashmap_iteration_not_enforced_outside_sim_critical_crates() {
    let ctx = classify("crates/obs/src/fixture_under_test.rs").expect("classifiable");
    let (diags, _) = lint_source(&ctx, &fixture("no-hashmap-iteration", "bad.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn no_float_eq_positive() {
    let (diags, _) = lint_as_core_lib("no-float-eq", "bad.rs");
    assert_eq!(
        locs(&diags),
        vec![(2, 7, RuleId::NoFloatEq), (6, 7, RuleId::NoFloatEq)]
    );
}

#[test]
fn no_float_eq_negative_and_test_exempt() {
    let (diags, _) = lint_as_core_lib("no-float-eq", "good.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn no_unwrap_in_lib_positive() {
    let (diags, _) = lint_as_core_lib("no-unwrap-in-lib", "bad.rs");
    assert_eq!(
        locs(&diags),
        vec![
            (2, 16, RuleId::NoUnwrapInLib),
            (6, 15, RuleId::NoUnwrapInLib),
        ]
    );
    // The rendered diagnostic carries the clickable location.
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("crates/core/src/fixture_under_test.rs:2:16:"),
        "{rendered}"
    );
}

#[test]
fn no_unwrap_in_lib_negative_covers_parser_expect_and_tests() {
    let (diags, _) = lint_as_core_lib("no-unwrap-in-lib", "good.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn no_unwrap_allowed_in_test_files() {
    let ctx = classify("crates/core/tests/some_test.rs").expect("classifiable");
    let (diags, _) = lint_source(&ctx, &fixture("no-unwrap-in-lib", "bad.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn forbid_unsafe_present_positive() {
    let (diags, _) = lint_as_crate_root("forbid-unsafe-present", "bad.rs");
    assert_eq!(locs(&diags), vec![(1, 1, RuleId::ForbidUnsafePresent)]);
}

#[test]
fn forbid_unsafe_present_negative() {
    let (diags, _) = lint_as_crate_root("forbid-unsafe-present", "good.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn forbid_unsafe_only_checked_at_crate_roots() {
    // The same attribute-less file is fine as a non-root module.
    let (diags, _) = lint_as_core_lib("forbid-unsafe-present", "bad.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn no_thread_sleep_positive() {
    let (diags, _) = lint_as_core_lib("no-thread-sleep", "bad.rs");
    assert_eq!(locs(&diags), vec![(2, 18, RuleId::NoThreadSleep)]);
}

#[test]
fn no_thread_sleep_negative() {
    let (diags, _) = lint_as_core_lib("no-thread-sleep", "good.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn no_thread_identity_positive() {
    let (diags, _) = lint_as_core_lib("no-thread-identity", "bad.rs");
    assert_eq!(
        locs(&diags),
        vec![
            (1, 35, RuleId::NoThreadIdentity),
            (2, 18, RuleId::NoThreadIdentity),
        ]
    );
}

#[test]
fn no_thread_identity_negative_and_test_exempt() {
    let (diags, _) = lint_as_core_lib("no-thread-identity", "good.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn no_thread_identity_not_enforced_outside_sim_critical_crates() {
    let ctx = classify("crates/obs/src/fixture_under_test.rs").expect("classifiable");
    let (diags, _) = lint_source(&ctx, &fixture("no-thread-identity", "bad.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn atomics_ordering_positive() {
    let (diags, _) = lint_as_core_lib("atomics-ordering-annotated", "bad.rs");
    assert_eq!(
        locs(&diags),
        vec![(4, 30, RuleId::AtomicsOrderingAnnotated)]
    );
}

#[test]
fn atomics_ordering_negative_with_justified_allow() {
    let (diags, suppressed) = lint_as_core_lib("atomics-ordering-annotated", "good.rs");
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(
        suppressed, 1,
        "the justified Relaxed must count as suppressed"
    );
}

#[test]
fn no_unbounded_sink_positive() {
    // The rule keys on the *file name* containing "sink".
    let ctx = classify("crates/obs/src/span_sink.rs").expect("classifiable");
    let (diags, _) = lint_source(&ctx, &fixture("no-unbounded-sink", "bad.rs"));
    assert_eq!(
        locs(&diags),
        vec![
            (8, 27, RuleId::NoUnboundedSink),
            (12, 9, RuleId::NoUnboundedSink),
        ]
    );
}

#[test]
fn no_unbounded_sink_negative_allows_rings_and_vec_from() {
    let ctx = classify("crates/obs/src/span_sink.rs").expect("classifiable");
    let (diags, suppressed) = lint_source(&ctx, &fixture("no-unbounded-sink", "good.rs"));
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(suppressed, 2, "both audited sink allocations must suppress");
}

#[test]
fn no_unbounded_sink_only_fires_in_sink_modules() {
    // Identical source under a non-sink file name is not this rule's business.
    let (diags, _) = lint_as_core_lib("no-unbounded-sink", "bad.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn allow_meta_rules_fire_and_do_not_suppress() {
    let (diags, suppressed) = lint_as_core_lib("allow", "bad.rs");
    assert_eq!(suppressed, 0);
    assert_eq!(
        locs(&diags),
        vec![
            (2, 5, RuleId::AllowMissingJustification),
            // The unjustified allow does NOT silence the unwrap under it.
            (3, 13, RuleId::NoUnwrapInLib),
            (7, 5, RuleId::AllowUnknownRule),
        ]
    );
}

#[test]
fn unknown_rule_diagnostic_lists_the_full_rule_catalogue() {
    let (diags, _) = lint_as_core_lib("allow", "bad.rs");
    let d = diags
        .iter()
        .find(|d| d.rule == RuleId::AllowUnknownRule)
        .expect("allow/bad.rs names an unknown rule");
    assert!(
        d.message
            .contains("lint:allow names unknown rule \"not-a-real-rule\""),
        "{}",
        d.message
    );
    // The message enumerates every valid rule id so the author can pick the
    // one they meant without leaving the terminal.
    for rule in RuleId::ALL {
        assert!(
            d.message.contains(rule.as_str()),
            "message must list {:?}: {}",
            rule.as_str(),
            d.message
        );
    }
}

#[test]
fn justified_allow_suppresses() {
    let (diags, suppressed) = lint_as_core_lib("allow", "good.rs");
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(suppressed, 1);
}
