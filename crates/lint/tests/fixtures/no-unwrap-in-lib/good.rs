pub struct Parser;

impl Parser {
    fn expect(&mut self, _want: u8) -> Result<(), String> {
        Ok(())
    }

    pub fn parse(&mut self) -> Result<(), String> {
        // A domain method named `expect` is not Result::expect.
        self.expect(b'{')?;
        Ok(())
    }
}

pub fn first(v: &[u32]) -> u32 {
    v.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!("7".parse::<u32>().unwrap(), 7);
    }
}
