pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn parse(s: &str) -> u32 {
    s.parse().expect("a number")
}
