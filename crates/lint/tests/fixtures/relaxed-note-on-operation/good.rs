// Clean twin of bad.rs: the note is on the line above the operation, so it
// binds to the `fetch_add` it justifies.
pub fn bump(c: &std::sync::atomic::AtomicU64) {
    // relaxed: cosmetic counter; nothing orders against it
    c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}
