// Fed to the structural tests as `crates/obs/src/counter.rs`: the
// `// relaxed:` note sits close enough to the `Relaxed` token to satisfy
// the token rule, but the atomic *operation* is on an earlier line — the
// structural pass must insist the note binds to the operation.
pub fn bump(c: &std::sync::atomic::AtomicU64) {
    c.fetch_add(
        1,
        // relaxed: cosmetic counter
        std::sync::atomic::Ordering::Relaxed,
    );
}
