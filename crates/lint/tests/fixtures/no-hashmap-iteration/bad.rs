use std::collections::HashMap;

pub fn total(m: &HashMap<String, u64>) -> u64 {
    let mut sum = 0;
    for (_k, v) in m.iter() {
        sum += v;
    }
    sum
}

pub fn names(m: &HashMap<String, u64>) -> Vec<String> {
    m.keys().cloned().collect()
}
