use std::collections::{BTreeMap, HashMap};

pub fn total(ordered: &BTreeMap<String, u64>) -> u64 {
    ordered.values().sum()
}

pub fn lookup(m: &HashMap<String, u64>, k: &str) -> u64 {
    m.get(k).copied().unwrap_or(0)
}
