use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::SeqCst);
}

pub fn peek(c: &AtomicU64) -> u64 {
    // lint:allow(atomics-ordering-annotated) -- cosmetic stat counter; no
    // ordering requirement.
    c.load(Ordering::Relaxed)
}
