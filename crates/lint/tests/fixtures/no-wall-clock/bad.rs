use std::time::Instant;

pub fn elapsed() -> f64 {
    let t = Instant::now();
    t.elapsed().as_secs_f64()
}

pub fn epoch_secs() -> u64 {
    let now = std::time::SystemTime::now();
    let _ = now;
    0
}
