/// Sim code measures time with the DES clock, not the host's.
pub fn elapsed(now_s: f64, start_s: f64) -> f64 {
    now_s - start_s
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_is_fine_in_tests() {
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_secs_f64() >= 0.0);
    }
}
