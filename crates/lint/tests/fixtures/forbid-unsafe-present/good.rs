//! A crate root carrying the mandatory attribute.

#![forbid(unsafe_code)]

pub fn ok() {}
