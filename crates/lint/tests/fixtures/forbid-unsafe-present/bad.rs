//! A crate root that forgot `forbid(unsafe_code)`.

pub fn ok() {}
