// Clean twin of bad.rs: both functions acquire registry before series, so
// the pair graph has one direction only.
pub fn scrape(registry: &std::sync::Mutex<u64>, series: &std::sync::Mutex<u64>) -> u64 {
    let a = registry.lock().unwrap_or_else(|e| e.into_inner());
    let b = series.lock().unwrap_or_else(|e| e.into_inner());
    *a + *b
}

pub fn record(registry: &std::sync::Mutex<u64>, series: &std::sync::Mutex<u64>) -> u64 {
    let a = registry.lock().unwrap_or_else(|e| e.into_inner());
    let b = series.lock().unwrap_or_else(|e| e.into_inner());
    *a + *b
}
