// Fed to the structural tests as `crates/obs/src/server.rs`: `scrape` takes
// registry before series, `record` takes them the other way round — a
// classic AB/BA deadlock candidate.
pub fn scrape(registry: &std::sync::Mutex<u64>, series: &std::sync::Mutex<u64>) -> u64 {
    let a = registry.lock().unwrap_or_else(|e| e.into_inner());
    let b = series.lock().unwrap_or_else(|e| e.into_inner());
    *a + *b
}

pub fn record(registry: &std::sync::Mutex<u64>, series: &std::sync::Mutex<u64>) -> u64 {
    let b = series.lock().unwrap_or_else(|e| e.into_inner());
    let a = registry.lock().unwrap_or_else(|e| e.into_inner());
    *a + *b
}
