// Fed to the structural tests as `crates/core/src/world.rs`: the panic in
// `inner` is two hops from the `ShardWorld::deliver` handler, and the
// diagnostic must spell out the whole chain.
impl ShardWorld for World {
    fn deliver(&mut self, at: u64, ev: u64) {
        route(ev);
    }
}

fn route(ev: u64) {
    inner(ev);
}

fn inner(ev: u64) {
    let v: Option<u64> = Some(ev);
    v.unwrap();
}
