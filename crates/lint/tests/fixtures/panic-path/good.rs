// Clean twin of bad.rs: the helper returns an Option instead of unwrapping,
// so no panic site is reachable from the handler.
impl ShardWorld for World {
    fn deliver(&mut self, at: u64, ev: u64) {
        route(ev);
    }
}

fn route(ev: u64) {
    inner(ev);
}

fn inner(ev: u64) -> Option<u64> {
    let v: Option<u64> = Some(ev);
    v
}
