// Fed to the structural tests as `crates/core/src/report.rs` — the
// sim-critical side. `tick_report` is a public API whose call chain reaches
// the hash-order iteration in fabricsim_obs::summary::summarize.
use fabricsim_obs::summary;

pub fn tick_report(m: &std::collections::HashMap<String, u64>) -> u64 {
    fold_in(m)
}

fn fold_in(m: &std::collections::HashMap<String, u64>) -> u64 {
    summary::summarize(m)
}
