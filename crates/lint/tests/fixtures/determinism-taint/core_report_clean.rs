// Clean twin of core_report.rs: a BTreeMap iterates in key order, so the
// public API is deterministic and no taint path exists.
pub fn tick_report(m: &std::collections::BTreeMap<String, u64>) -> u64 {
    m.values().sum()
}
