// Fed to the structural tests as `crates/obs/src/summary.rs` — a
// NON-sim-critical crate, where hash iteration is token-rule-legal but
// becomes a taint source the moment sim-critical code calls into it.
use std::collections::HashMap;

pub fn summarize(m: &HashMap<String, u64>) -> u64 {
    let mut total = 0;
    for (_k, v) in m.iter() {
        total += v;
    }
    total
}
