pub fn at_origin(x: f64) -> bool {
    x == 0.0
}

pub fn not_one(y: f32) -> bool {
    y != 1.0
}
