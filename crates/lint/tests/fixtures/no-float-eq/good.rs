pub fn at_origin(x: f64) -> bool {
    x.abs() < 1e-12
}

pub fn same_bucket(a: u64, b: u64) -> bool {
    a == b
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_float_compare_is_fine_in_tests() {
        assert!(super::at_origin(0.0) == true);
        let x = 0.5f64;
        assert!(x == 0.5);
    }
}
