// A sink buffering into growable containers: both constructors must fire.
pub struct BadSink {
    events: Vec<u64>,
}

impl BadSink {
    pub fn new() -> BadSink {
        BadSink { events: Vec::new() }
    }

    pub fn reserve() -> Vec<u64> {
        Vec::with_capacity(1024)
    }
}
