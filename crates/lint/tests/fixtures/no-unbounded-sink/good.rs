//! Bounded sink: the ring carries an audited allow, and `Vec::from` on drain
//! is fine because the ring already bounded the allocation.
use std::collections::VecDeque;

pub struct GoodSink {
    buf: VecDeque<u64>,
    dropped: u64,
}

impl GoodSink {
    pub fn bounded(capacity: usize) -> GoodSink {
        GoodSink {
            // lint:allow(no-unbounded-sink) -- bounded ring: push() evicts the
            // oldest entry at `capacity` and counts it in `dropped`.
            buf: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    pub fn push(&mut self, v: u64) {
        if self.buf.len() == self.buf.capacity() {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(v);
    }

    pub fn into_values(self) -> Vec<u64> {
        Vec::from(self.buf)
    }
}
