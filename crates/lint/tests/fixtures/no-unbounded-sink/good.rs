//! Bounded sinks: the ring carries an audited allow, and `Vec::from` on drain
//! is fine because the ring already bounded the allocation. Two eviction
//! policies are sound — drop-oldest (the span sink's ring) and drop-newest
//! (the health plane's event buffer); both count what they shed.
use std::collections::VecDeque;

pub struct GoodSink {
    buf: VecDeque<u64>,
    dropped: u64,
}

impl GoodSink {
    pub fn bounded(capacity: usize) -> GoodSink {
        GoodSink {
            // lint:allow(no-unbounded-sink) -- bounded ring: push() evicts the
            // oldest entry at `capacity` and counts it in `dropped`.
            buf: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    pub fn push(&mut self, v: u64) {
        if self.buf.len() == self.buf.capacity() {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(v);
    }

    pub fn into_values(self) -> Vec<u64> {
        Vec::from(self.buf)
    }
}

pub struct DropNewestSink {
    capacity: usize,
    buf: Vec<u64>,
    dropped: u64,
}

impl DropNewestSink {
    pub fn bounded(capacity: usize) -> DropNewestSink {
        DropNewestSink {
            capacity,
            // lint:allow(no-unbounded-sink) -- bounded buffer: push() refuses
            // new entries at `capacity` and counts them in `dropped`.
            buf: Vec::with_capacity(capacity),
            dropped: 0,
        }
    }

    pub fn push(&mut self, v: u64) {
        if self.buf.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.buf.push(v);
    }
}
