pub fn f() -> u32 {
    // lint:allow(no-unwrap-in-lib)
    Some(1).unwrap()
}

pub fn g() -> u32 {
    // lint:allow(not-a-real-rule) -- the rule name is misspelled
    2
}
