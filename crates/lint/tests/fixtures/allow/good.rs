pub fn f() -> u32 {
    // lint:allow(no-unwrap-in-lib) -- constant Some is infallible
    Some(1).unwrap()
}
