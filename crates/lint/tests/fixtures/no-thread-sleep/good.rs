/// Waiting in simulated time means scheduling a future event, not blocking.
pub fn sleep_budget_ms() -> u64 {
    5
}
