pub fn nap() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
