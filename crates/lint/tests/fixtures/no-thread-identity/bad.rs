pub fn who_am_i() -> std::thread::ThreadId {
    std::thread::current().id()
}
