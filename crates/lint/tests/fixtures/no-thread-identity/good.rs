/// Per-shard state is keyed by the shard index assigned at spawn time, so
/// results cannot depend on which OS thread runs the shard.
pub fn shard_key(shard_index: usize) -> usize {
    shard_index
}

pub fn run_scoped(f: impl FnOnce() + Send) {
    std::thread::scope(|s| {
        s.spawn(f);
    });
}

#[cfg(test)]
mod tests {
    #[test]
    fn thread_identity_is_fine_in_tests() {
        let _ = std::thread::current().id();
    }
}
