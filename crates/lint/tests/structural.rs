//! Fixture tests for the symbol-graph passes: determinism taint, panic
//! paths, lock order, and relaxed-note binding. Fixtures live under
//! `tests/fixtures/<rule>/` and are fed through [`fabricsim_lint::symgraph`]
//! with synthetic workspace paths, exactly as `lint_paths` would.

use fabricsim_lint::symgraph::{parse_sources, SymbolGraph};
use fabricsim_lint::{Diagnostic, RuleId};

fn fixture(rule: &str, file: &str) -> String {
    let path = format!(
        "{}/tests/fixtures/{rule}/{file}",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Runs the structural passes over `(workspace_path, fixture_file)` pairs.
fn run(rule: &str, files: &[(&str, &str)]) -> Vec<Diagnostic> {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(path, file)| ((*path).to_string(), fixture(rule, file)))
        .collect();
    let borrowed: Vec<(&str, &str)> = sources
        .iter()
        .map(|(p, s)| (p.as_str(), s.as_str()))
        .collect();
    let parsed = parse_sources(&borrowed);
    let graph = SymbolGraph::build(&parsed);
    fabricsim_lint::taint::structural_passes(&parsed, &graph)
}

#[test]
fn determinism_taint_reports_the_full_cross_crate_chain() {
    let diags = run(
        "determinism-taint",
        &[
            ("crates/obs/src/summary.rs", "obs_summary.rs"),
            ("crates/core/src/report.rs", "core_report.rs"),
        ],
    );
    let taints: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RuleId::DeterminismTaint)
        .collect();
    assert_eq!(taints.len(), 1, "{diags:?}");
    let d = taints[0];
    // Reported at the source (the hash iteration in obs).
    assert_eq!(d.file, "crates/obs/src/summary.rs");
    // The chain runs sink → … → source, naming every hop.
    assert!(
        d.notes[0].message.contains("tick_report") && d.notes[0].message.contains("public API"),
        "{:?}",
        d.notes
    );
    assert!(
        d.notes.iter().any(|n| n.message.contains("fold_in")),
        "intermediate hop must be named: {:?}",
        d.notes
    );
    assert!(
        d.notes
            .last()
            .is_some_and(|n| n.message.contains("summarize") && n.message.contains("source")),
        "{:?}",
        d.notes
    );
    // Every hop's note points into a real file so SARIF can link it.
    assert!(d.notes.iter().all(|n| n.line >= 1));
}

#[test]
fn determinism_taint_clean_when_no_path_reaches_the_source() {
    let diags = run(
        "determinism-taint",
        &[
            ("crates/obs/src/summary.rs", "obs_summary.rs"),
            ("crates/core/src/report.rs", "core_report_clean.rs"),
        ],
    );
    assert!(
        diags.iter().all(|d| d.rule != RuleId::DeterminismTaint),
        "{diags:?}"
    );
}

#[test]
fn panic_path_walks_two_hops_from_deliver() {
    let diags = run("panic-path", &[("crates/core/src/world.rs", "bad.rs")]);
    let panics: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RuleId::PanicPath)
        .collect();
    assert_eq!(panics.len(), 1, "{diags:?}");
    let d = panics[0];
    assert_eq!((d.line, d.file.as_str()), (16, "crates/core/src/world.rs"));
    assert!(d.message.contains("unwrap"), "{}", d.message);
    assert!(
        d.notes[0].message.contains("deliver"),
        "root note first: {:?}",
        d.notes
    );
    assert!(
        d.notes.iter().any(|n| n.message.contains("route")),
        "{:?}",
        d.notes
    );
}

#[test]
fn panic_path_clean_when_helper_returns_option() {
    let diags = run("panic-path", &[("crates/core/src/world.rs", "good.rs")]);
    assert!(
        diags.iter().all(|d| d.rule != RuleId::PanicPath),
        "{diags:?}"
    );
}

#[test]
fn lock_order_flags_opposite_acquisition_orders_once() {
    let diags = run("lock-order", &[("crates/obs/src/server.rs", "bad.rs")]);
    let locks: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RuleId::LockOrder)
        .collect();
    assert_eq!(
        locks.len(),
        1,
        "one diagnostic per unordered pair: {diags:?}"
    );
    let d = locks[0];
    assert!(
        d.message.contains("registry") && d.message.contains("series"),
        "{}",
        d.message
    );
    assert!(!d.notes.is_empty(), "must carry the opposite-order witness");
}

#[test]
fn lock_order_clean_when_orders_agree() {
    let diags = run("lock-order", &[("crates/obs/src/server.rs", "good.rs")]);
    assert!(
        diags.iter().all(|d| d.rule != RuleId::LockOrder),
        "{diags:?}"
    );
}

#[test]
fn relaxed_note_must_bind_to_the_operation_line() {
    let diags = run(
        "relaxed-note-on-operation",
        &[("crates/obs/src/counter.rs", "bad.rs")],
    );
    let notes: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == RuleId::RelaxedNoteOnOperation)
        .collect();
    assert_eq!(notes.len(), 1, "{diags:?}");
    // The companion note points at the operation the author must annotate.
    assert!(
        notes[0]
            .notes
            .iter()
            .any(|n| n.message.contains("operation")),
        "{:?}",
        notes[0].notes
    );
}

#[test]
fn relaxed_note_on_the_operation_line_is_clean() {
    let diags = run(
        "relaxed-note-on-operation",
        &[("crates/obs/src/counter.rs", "good.rs")],
    );
    assert!(
        diags
            .iter()
            .all(|d| d.rule != RuleId::RelaxedNoteOnOperation),
        "{diags:?}"
    );
}
