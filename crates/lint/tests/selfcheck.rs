//! The workspace must be lint-clean: every violation is either fixed or
//! carries a justified `lint:allow`. This is the in-tree twin of the CI
//! `lint` job — if it fails, `cargo run -p fabricsim-lint` shows the list.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root");
    let report = fabricsim_lint::lint_paths(root, &[]).expect("walk workspace");
    assert!(
        report.checked_files > 100,
        "workspace walk looks truncated: only {} files",
        report.checked_files
    );
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        report.to_human()
    );
}

#[test]
fn every_suppression_in_the_workspace_is_justified() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = fabricsim_lint::lint_paths(root, &[]).expect("walk workspace");
    // Unjustified or unknown-rule allows surface as meta-violations, so a
    // clean report means every suppression carries a written justification.
    assert!(report.is_clean(), "{}", report.to_human());
    assert!(
        report.suppressed > 0,
        "expected at least the audited WallClock suppression"
    );
}
