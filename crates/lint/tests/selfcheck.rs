//! The workspace must be lint-clean: every violation is either fixed or
//! carries a justified `lint:allow`. This is the in-tree twin of the CI
//! `lint` job — if it fails, `cargo run -p fabricsim-lint` shows the list.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root");
    let report = fabricsim_lint::lint_paths(root, &[]).expect("walk workspace");
    assert!(
        report.checked_files > 100,
        "workspace walk looks truncated: only {} files",
        report.checked_files
    );
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        report.to_human()
    );
}

#[test]
fn every_suppression_in_the_workspace_is_justified() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = fabricsim_lint::lint_paths(root, &[]).expect("walk workspace");
    // Unjustified or unknown-rule allows surface as meta-violations, so a
    // clean report means every suppression carries a written justification.
    assert!(report.is_clean(), "{}", report.to_human());
    assert!(
        report.suppressed > 0,
        "expected at least the audited WallClock suppression"
    );
}

/// The ratchet file must exist and match the live counts *exactly* — not
/// just stay under budget. Equality means every burned suppression is
/// immediately locked in: forgetting `--write-ratchet` after a cleanup
/// fails here, not six PRs later when someone spends the slack.
#[test]
fn suppression_ratchet_matches_the_live_counts_exactly() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = fabricsim_lint::lint_paths(root, &[]).expect("walk workspace");
    let text = std::fs::read_to_string(root.join(fabricsim_lint::RATCHET_FILE))
        .expect("lint-ratchet.txt must exist at the workspace root");
    let (total, by_rule) =
        fabricsim_lint::parse_ratchet(&text).expect("lint-ratchet.txt must parse");
    assert_eq!(
        total, report.suppressed,
        "ratchet total is stale; regenerate with `cargo run -p fabricsim-lint -- --write-ratchet`"
    );
    let live: std::collections::BTreeMap<String, usize> = report
        .suppressed_by_rule
        .iter()
        .map(|(r, n)| (r.as_str().to_string(), *n))
        .collect();
    assert_eq!(by_rule, live, "per-rule ratchet counts are stale");
}

/// No nondeterminism source may reach a sim-critical public API: the taint
/// pass over the real workspace graph must come back empty (suppressions
/// aside, which the clean check above already audits).
#[test]
fn workspace_is_determinism_taint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = fabricsim_lint::lint_paths(root, &[]).expect("walk workspace");
    let taints: Vec<_> = report
        .violations
        .iter()
        .filter(|d| d.rule == fabricsim_lint::RuleId::DeterminismTaint)
        .collect();
    assert!(taints.is_empty(), "{taints:?}");
}
