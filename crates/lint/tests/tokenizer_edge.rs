//! Edge-case tests for the lint tokenizer: raw strings with hash fences,
//! nested block comments, lifetimes vs char literals, and raw identifiers.
//! Each test asserts exact `line:col` positions (both 1-based) so a lexing
//! regression shows up as a precise coordinate diff, not just a kind flip.

use fabricsim_lint::tokenizer::{tokenize, TokenKind};

/// `(kind, text, line, col)` for every token, comments included.
fn spans(src: &str) -> Vec<(TokenKind, String, u32, u32)> {
    tokenize(src)
        .into_iter()
        .map(|t| (t.kind, t.text, t.line, t.col))
        .collect()
}

#[test]
fn raw_string_with_hashes_swallows_quotes_and_fake_terminators() {
    // The `"#` inside the body must not close the r##"…"## fence; the token
    // after the string starts exactly one column past the real terminator.
    let src = "let s = r##\"has \"# inside\"##; x";
    let toks = spans(src);
    assert_eq!(
        toks,
        vec![
            (TokenKind::Ident, "let".into(), 1, 1),
            (TokenKind::Ident, "s".into(), 1, 5),
            (TokenKind::Punct, "=".into(), 1, 7),
            (TokenKind::Str, "r##\"has \"# inside\"##".into(), 1, 9),
            (TokenKind::Punct, ";".into(), 1, 29),
            (TokenKind::Ident, "x".into(), 1, 31),
        ]
    );
}

#[test]
fn multiline_raw_string_advances_the_line_counter() {
    let src = "r#\"line one\nline two\"# end";
    let toks = spans(src);
    assert_eq!(toks[0].0, TokenKind::Str);
    assert_eq!((toks[0].2, toks[0].3), (1, 1));
    // `end` sits on line 2, after `line two"# ` (11 chars → col 12).
    assert_eq!(toks[1], (TokenKind::Ident, "end".into(), 2, 12), "{toks:?}");
}

#[test]
fn nested_block_comments_close_at_the_matching_depth() {
    let src = "a /* outer /* inner */ still-comment */ b";
    let toks = spans(src);
    assert_eq!(
        toks,
        vec![
            (TokenKind::Ident, "a".into(), 1, 1),
            (
                TokenKind::BlockComment,
                "/* outer /* inner */ still-comment */".into(),
                1,
                3,
            ),
            (TokenKind::Ident, "b".into(), 1, 41),
        ]
    );
}

#[test]
fn block_comment_spanning_lines_keeps_columns_honest_after_it() {
    let src = "/* one\ntwo */ three";
    let toks = spans(src);
    assert_eq!(toks[0].0, TokenKind::BlockComment);
    assert_eq!((toks[0].2, toks[0].3), (1, 1));
    assert_eq!(toks[1], (TokenKind::Ident, "three".into(), 2, 8));
}

#[test]
fn lifetimes_are_not_char_literals() {
    let src = "fn f<'a>(x: &'a str) { let c = 'x'; let s = 'static; }";
    let toks = spans(src);
    let lifetimes: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Lifetime).collect();
    let chars: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Char).collect();
    assert_eq!(
        lifetimes,
        vec![
            &(TokenKind::Lifetime, "'a".into(), 1, 6),
            &(TokenKind::Lifetime, "'a".into(), 1, 14),
            &(TokenKind::Lifetime, "'static".into(), 1, 45),
        ],
        "{toks:?}"
    );
    assert_eq!(chars, vec![&(TokenKind::Char, "'x'".into(), 1, 32)]);
}

#[test]
fn escaped_char_literal_is_one_char_token_not_a_lifetime() {
    let src = r"let nl = '\n'; let q = '\''; 'x";
    let toks = spans(src);
    let chars: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Char).collect();
    assert_eq!(
        chars,
        vec![
            &(TokenKind::Char, r"'\n'".into(), 1, 10),
            &(TokenKind::Char, r"'\''".into(), 1, 24),
        ],
        "{toks:?}"
    );
    // A bare `'x` at end of input is a lifetime, not an unterminated char.
    assert_eq!(
        toks.last(),
        Some(&(TokenKind::Lifetime, "'x".into(), 1, 30))
    );
}

#[test]
fn raw_identifier_is_a_single_ident_token() {
    let src = "let r#type = r#match; r#\"raw\"#";
    let toks = spans(src);
    assert_eq!(
        toks,
        vec![
            (TokenKind::Ident, "let".into(), 1, 1),
            (TokenKind::Ident, "r#type".into(), 1, 5),
            (TokenKind::Punct, "=".into(), 1, 12),
            (TokenKind::Ident, "r#match".into(), 1, 14),
            (TokenKind::Punct, ";".into(), 1, 21),
            // …and `r#"` right after is still a raw *string*, not `r#ident`.
            (TokenKind::Str, "r#\"raw\"#".into(), 1, 23),
        ]
    );
}

#[test]
fn raw_identifier_name_strips_the_prefix_for_rule_matching() {
    let toks = tokenize("r#type plain");
    assert_eq!(toks[0].ident_name(), "type");
    assert_eq!(toks[1].ident_name(), "plain");
}
