//! Exit-code contract of the CLI driver: 0 clean, 1 violations, 2 usage or
//! I/O errors — seeded violations must flip the code, and the JSON report
//! must carry the exact `file:line:col` of each one.

use std::fs;
use std::path::PathBuf;

use fabricsim_lint::cli_run;

/// Builds a scratch workspace with one crate and the given lib.rs source.
/// Unique per test so parallel test threads don't collide.
fn scratch_workspace(tag: &str, lib_src: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fabricsim-lint-cli-{}-{tag}", std::process::id()));
    let src = dir.join("crates").join("demo").join("src");
    fs::create_dir_all(&src).expect("mkdir scratch workspace");
    fs::write(src.join("lib.rs"), lib_src).expect("write lib.rs");
    dir
}

fn args(v: &[&str]) -> Vec<String> {
    v.iter().map(ToString::to_string).collect()
}

#[test]
fn clean_tree_exits_zero() {
    let root = scratch_workspace(
        "clean",
        "#![forbid(unsafe_code)]\npub fn ok(a: u64, b: u64) -> u64 { a + b }\n",
    );
    let code = cli_run(&args(&["--root", root.to_str().expect("utf-8 path")]));
    assert_eq!(code, 0);
    fs::remove_dir_all(&root).ok();
}

#[test]
fn seeded_violation_exits_one_with_exact_location() {
    let root = scratch_workspace(
        "seeded",
        "#![forbid(unsafe_code)]\npub fn boom(v: &[u32]) -> u32 {\n    *v.first().unwrap()\n}\n",
    );
    let code = cli_run(&args(&["--root", root.to_str().expect("utf-8 path")]));
    assert_eq!(code, 1, "a seeded .unwrap() must fail the run");

    // The JSON artifact names the exact location of the seeded violation.
    let report = root.join("lint-report.json");
    let code = cli_run(&args(&[
        "--root",
        root.to_str().expect("utf-8 path"),
        "--json",
        report.to_str().expect("utf-8 path"),
    ]));
    assert_eq!(code, 1);
    let body = fs::read_to_string(&report).expect("read JSON report");
    assert!(body.contains("\"schema\": \"fabricsim-lint/v1\""), "{body}");
    assert!(
        body.contains("\"file\": \"crates/demo/src/lib.rs\""),
        "{body}"
    );
    assert!(body.contains("\"line\": 3"), "{body}");
    assert!(body.contains("\"col\": 16"), "{body}");
    assert!(body.contains("\"rule\": \"no-unwrap-in-lib\""), "{body}");
    fs::remove_dir_all(&root).ok();
}

#[test]
fn justified_allow_restores_exit_zero() {
    let root = scratch_workspace(
        "allowed",
        "#![forbid(unsafe_code)]\npub fn boom(v: &[u32]) -> u32 {\n    \
         // lint:allow(no-unwrap-in-lib) -- fixture proves suppression works\n    \
         *v.first().unwrap()\n}\n",
    );
    let code = cli_run(&args(&["--root", root.to_str().expect("utf-8 path")]));
    assert_eq!(code, 0);
    fs::remove_dir_all(&root).ok();
}

#[test]
fn unknown_flag_exits_two() {
    assert_eq!(cli_run(&args(&["--definitely-not-a-flag"])), 2);
}

#[test]
fn missing_root_dir_exits_two() {
    assert_eq!(
        cli_run(&args(&["--root", "/nonexistent/fabricsim-lint-root"])),
        2
    );
}

#[test]
fn list_rules_exits_zero() {
    assert_eq!(cli_run(&args(&["--list-rules"])), 0);
}

const PARTIAL_CMP_SRC: &str = "#![forbid(unsafe_code)]\n\
     pub fn cmp(a: f64, b: f64) -> std::cmp::Ordering {\n    \
     a.partial_cmp(&b).unwrap()\n}\n";

#[test]
fn fix_rewrites_partial_cmp_and_leaves_the_tree_clean() {
    let root = scratch_workspace("fix", PARTIAL_CMP_SRC);
    let code = cli_run(&args(&[
        "--root",
        root.to_str().expect("utf-8 path"),
        "--fix",
    ]));
    assert_eq!(code, 0, "after the rewrite the tree must lint clean");
    let body = fs::read_to_string(root.join("crates/demo/src/lib.rs")).expect("read fixed lib.rs");
    assert!(body.contains("a.total_cmp(&b)"), "{body}");
    assert!(!body.contains("partial_cmp"), "{body}");
    fs::remove_dir_all(&root).ok();
}

#[test]
fn fix_check_reports_pending_fixes_without_writing() {
    let root = scratch_workspace("fix-check", PARTIAL_CMP_SRC);
    let code = cli_run(&args(&[
        "--root",
        root.to_str().expect("utf-8 path"),
        "--fix",
        "--check",
    ]));
    assert_eq!(code, 1, "a pending fix must fail --fix --check");
    let body = fs::read_to_string(root.join("crates/demo/src/lib.rs")).expect("read lib.rs");
    assert!(
        body.contains("partial_cmp"),
        "--check must not write: {body}"
    );
    fs::remove_dir_all(&root).ok();
}

#[test]
fn fix_check_is_clean_when_nothing_would_change() {
    let root = scratch_workspace(
        "fix-clean",
        "#![forbid(unsafe_code)]\npub fn ok(a: u64, b: u64) -> u64 { a + b }\n",
    );
    let code = cli_run(&args(&[
        "--root",
        root.to_str().expect("utf-8 path"),
        "--fix",
        "--check",
    ]));
    assert_eq!(code, 0);
    fs::remove_dir_all(&root).ok();
}

#[test]
fn check_without_fix_is_a_usage_error() {
    let root = scratch_workspace(
        "check-alone",
        "#![forbid(unsafe_code)]\npub fn ok() -> u64 { 1 }\n",
    );
    assert_eq!(
        cli_run(&args(&[
            "--root",
            root.to_str().expect("utf-8 path"),
            "--check"
        ])),
        2
    );
    fs::remove_dir_all(&root).ok();
}

#[test]
fn sarif_artifact_is_written_and_validates() {
    let root = scratch_workspace(
        "sarif",
        "#![forbid(unsafe_code)]\npub fn boom(v: &[u32]) -> u32 {\n    *v.first().unwrap()\n}\n",
    );
    let sarif = root.join("lint-report.sarif");
    let code = cli_run(&args(&[
        "--root",
        root.to_str().expect("utf-8 path"),
        "--sarif",
        sarif.to_str().expect("utf-8 path"),
    ]));
    assert_eq!(code, 1, "the seeded violation still fails the run");
    let body = fs::read_to_string(&sarif).expect("read SARIF artifact");
    fabricsim_lint::sarif::validate_sarif(&body).expect("artifact must be valid SARIF");
    assert!(body.contains("\"no-unwrap-in-lib\""), "{body}");
    assert!(body.contains("crates/demo/src/lib.rs"), "{body}");
    fs::remove_dir_all(&root).ok();
}

const ALLOWED_SRC: &str = "#![forbid(unsafe_code)]\npub fn boom(v: &[u32]) -> u32 {\n    \
     // lint:allow(no-unwrap-in-lib) -- ratchet fixture\n    \
     *v.first().unwrap()\n}\n";

#[test]
fn ratchet_overrun_fails_a_whole_workspace_run() {
    let root = scratch_workspace("ratchet-over", ALLOWED_SRC);
    fs::write(root.join(fabricsim_lint::RATCHET_FILE), "total 0\n").expect("write ratchet");
    let code = cli_run(&args(&["--root", root.to_str().expect("utf-8 path")]));
    assert_eq!(code, 1, "1 live suppression exceeds the recorded 0");
    fs::remove_dir_all(&root).ok();
}

#[test]
fn ratchet_at_budget_passes_and_write_ratchet_records_the_counts() {
    let root = scratch_workspace("ratchet-ok", ALLOWED_SRC);
    let code = cli_run(&args(&[
        "--root",
        root.to_str().expect("utf-8 path"),
        "--write-ratchet",
    ]));
    assert_eq!(code, 0);
    let body =
        fs::read_to_string(root.join(fabricsim_lint::RATCHET_FILE)).expect("ratchet written");
    assert!(body.contains("total 1"), "{body}");
    assert!(body.contains("no-unwrap-in-lib 1"), "{body}");
    // The freshly recorded budget passes the enforcing run.
    assert_eq!(
        cli_run(&args(&["--root", root.to_str().expect("utf-8 path")])),
        0
    );
    fs::remove_dir_all(&root).ok();
}

#[test]
fn per_rule_ratchet_overrun_fails_even_when_total_fits() {
    let root = scratch_workspace("ratchet-rule", ALLOWED_SRC);
    // Total budget is generous but the rule's own budget is zero.
    fs::write(
        root.join(fabricsim_lint::RATCHET_FILE),
        "total 5\nno-wall-clock 5\n",
    )
    .expect("write ratchet");
    let code = cli_run(&args(&["--root", root.to_str().expect("utf-8 path")]));
    assert_eq!(code, 1, "no-unwrap-in-lib has no recorded budget");
    fs::remove_dir_all(&root).ok();
}
