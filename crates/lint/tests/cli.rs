//! Exit-code contract of the CLI driver: 0 clean, 1 violations, 2 usage or
//! I/O errors — seeded violations must flip the code, and the JSON report
//! must carry the exact `file:line:col` of each one.

use std::fs;
use std::path::PathBuf;

use fabricsim_lint::cli_run;

/// Builds a scratch workspace with one crate and the given lib.rs source.
/// Unique per test so parallel test threads don't collide.
fn scratch_workspace(tag: &str, lib_src: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fabricsim-lint-cli-{}-{tag}", std::process::id()));
    let src = dir.join("crates").join("demo").join("src");
    fs::create_dir_all(&src).expect("mkdir scratch workspace");
    fs::write(src.join("lib.rs"), lib_src).expect("write lib.rs");
    dir
}

fn args(v: &[&str]) -> Vec<String> {
    v.iter().map(ToString::to_string).collect()
}

#[test]
fn clean_tree_exits_zero() {
    let root = scratch_workspace(
        "clean",
        "#![forbid(unsafe_code)]\npub fn ok(a: u64, b: u64) -> u64 { a + b }\n",
    );
    let code = cli_run(&args(&["--root", root.to_str().expect("utf-8 path")]));
    assert_eq!(code, 0);
    fs::remove_dir_all(&root).ok();
}

#[test]
fn seeded_violation_exits_one_with_exact_location() {
    let root = scratch_workspace(
        "seeded",
        "#![forbid(unsafe_code)]\npub fn boom(v: &[u32]) -> u32 {\n    *v.first().unwrap()\n}\n",
    );
    let code = cli_run(&args(&["--root", root.to_str().expect("utf-8 path")]));
    assert_eq!(code, 1, "a seeded .unwrap() must fail the run");

    // The JSON artifact names the exact location of the seeded violation.
    let report = root.join("lint-report.json");
    let code = cli_run(&args(&[
        "--root",
        root.to_str().expect("utf-8 path"),
        "--json",
        report.to_str().expect("utf-8 path"),
    ]));
    assert_eq!(code, 1);
    let body = fs::read_to_string(&report).expect("read JSON report");
    assert!(body.contains("\"schema\": \"fabricsim-lint/v1\""), "{body}");
    assert!(
        body.contains("\"file\": \"crates/demo/src/lib.rs\""),
        "{body}"
    );
    assert!(body.contains("\"line\": 3"), "{body}");
    assert!(body.contains("\"col\": 16"), "{body}");
    assert!(body.contains("\"rule\": \"no-unwrap-in-lib\""), "{body}");
    fs::remove_dir_all(&root).ok();
}

#[test]
fn justified_allow_restores_exit_zero() {
    let root = scratch_workspace(
        "allowed",
        "#![forbid(unsafe_code)]\npub fn boom(v: &[u32]) -> u32 {\n    \
         // lint:allow(no-unwrap-in-lib) -- fixture proves suppression works\n    \
         *v.first().unwrap()\n}\n",
    );
    let code = cli_run(&args(&["--root", root.to_str().expect("utf-8 path")]));
    assert_eq!(code, 0);
    fs::remove_dir_all(&root).ok();
}

#[test]
fn unknown_flag_exits_two() {
    assert_eq!(cli_run(&args(&["--definitely-not-a-flag"])), 2);
}

#[test]
fn missing_root_dir_exits_two() {
    assert_eq!(
        cli_run(&args(&["--root", "/nonexistent/fabricsim-lint-root"])),
        2
    );
}

#[test]
fn list_rules_exits_zero() {
    assert_eq!(cli_run(&args(&["--list-rules"])), 0);
}
