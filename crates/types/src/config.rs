//! Channel and ordering-service configuration (Fabric's `configtx` analogue).

use std::fmt;

/// Which consensus implementation backs the ordering service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrdererType {
    /// Single-node ordering (development/testing; single point of failure).
    Solo,
    /// Kafka-backed ordering: brokers + a ZooKeeper ensemble.
    Kafka,
    /// Raft-backed ordering (etcd/raft in real Fabric).
    Raft,
}

impl OrdererType {
    /// All three variants, in the paper's presentation order.
    pub const ALL: [OrdererType; 3] = [OrdererType::Solo, OrdererType::Kafka, OrdererType::Raft];
}

impl fmt::Display for OrdererType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OrdererType::Solo => "Solo",
            OrdererType::Kafka => "Kafka",
            OrdererType::Raft => "Raft",
        })
    }
}

/// Block-cutting parameters: the two conditions under which the ordering
/// service cuts a new block (paper §III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum transactions per block (paper default: 100).
    pub max_message_count: usize,
    /// Maximum time to wait before cutting a non-empty block, in milliseconds
    /// (paper default: 1000 ms).
    pub batch_timeout_ms: u64,
    /// Maximum total payload bytes per block (Fabric's `AbsoluteMaxBytes`).
    pub max_bytes: u64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        // The paper's defaults: BatchSize 100, BatchTimeout 1 s.
        BatchConfig {
            max_message_count: 100,
            batch_timeout_ms: 1_000,
            max_bytes: 10 * 1024 * 1024,
        }
    }
}

impl BatchConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_message_count == 0 {
            return Err("max_message_count must be at least 1".into());
        }
        if self.batch_timeout_ms == 0 {
            return Err("batch_timeout_ms must be positive".into());
        }
        if self.max_bytes == 0 {
            return Err("max_bytes must be positive".into());
        }
        Ok(())
    }
}

/// Per-channel configuration: consensus type, batching, and the endorsement
/// policy (stored as its textual form; parsed by `fabricsim-policy`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelConfig {
    /// Consensus backing the ordering service.
    pub orderer_type: OrdererType,
    /// Block-cutting parameters.
    pub batch: BatchConfig,
    /// Endorsement policy text, e.g. `"OR('Org1.peer','Org2.peer')"`.
    pub endorsement_policy: String,
    /// Client-side ordering timeout in milliseconds; responses slower than
    /// this are rejected by the client (paper: 3 s).
    pub ordering_timeout_ms: u64,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            orderer_type: OrdererType::Solo,
            batch: BatchConfig::default(),
            endorsement_policy: "OR('Org1.peer')".to_string(),
            ordering_timeout_ms: 3_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = ChannelConfig::default();
        assert_eq!(c.batch.max_message_count, 100);
        assert_eq!(c.batch.batch_timeout_ms, 1_000);
        assert_eq!(c.ordering_timeout_ms, 3_000);
        assert!(c.batch.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zeroes() {
        let b = BatchConfig {
            max_message_count: 0,
            ..BatchConfig::default()
        };
        assert!(b.validate().is_err());
        let b = BatchConfig {
            batch_timeout_ms: 0,
            ..BatchConfig::default()
        };
        assert!(b.validate().is_err());
        let b = BatchConfig {
            max_bytes: 0,
            ..BatchConfig::default()
        };
        assert!(b.validate().is_err());
    }

    #[test]
    fn orderer_type_display() {
        assert_eq!(OrdererType::Solo.to_string(), "Solo");
        assert_eq!(OrdererType::Kafka.to_string(), "Kafka");
        assert_eq!(OrdererType::Raft.to_string(), "Raft");
        assert_eq!(OrdererType::ALL.len(), 3);
    }
}
