//! Identifiers: organizations, nodes, channels, transactions, principals.

use std::fmt;

use fabricsim_crypto::Hash256;

/// An organization (consortium member) identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OrgId(pub u32);

/// A membership-service-provider identifier; one per organization.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MspId(pub String);

/// A node in the network: peer, orderer, client pool, Kafka broker or
/// ZooKeeper replica. Node ids are globally unique across roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeId {
    /// A peer node (endorser and/or committer).
    Peer(u32),
    /// An ordering-service node (OSN).
    Orderer(u32),
    /// A client / workload-generator pool.
    Client(u32),
    /// A Kafka broker backing the Kafka ordering service.
    Broker(u32),
    /// A ZooKeeper ensemble member.
    ZooKeeper(u32),
}

impl NodeId {
    /// A stable string form usable as an RNG stream name or map key.
    pub fn label(&self) -> String {
        match self {
            NodeId::Peer(i) => format!("peer{i}"),
            NodeId::Orderer(i) => format!("orderer{i}"),
            NodeId::Client(i) => format!("client{i}"),
            NodeId::Broker(i) => format!("broker{i}"),
            NodeId::ZooKeeper(i) => format!("zk{i}"),
        }
    }

    /// The numeric index within the node's role.
    pub fn index(&self) -> u32 {
        match self {
            NodeId::Peer(i)
            | NodeId::Orderer(i)
            | NodeId::Client(i)
            | NodeId::Broker(i)
            | NodeId::ZooKeeper(i) => *i,
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A client identity (a signing identity enrolled with the CA).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u32);

/// A channel: a private blockchain subnet with its own ledger.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub String);

impl ChannelId {
    /// The conventional default channel used by the experiments.
    pub fn default_channel() -> Self {
        ChannelId("mychannel".to_string())
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A transaction identifier: the hash of the creator identity and nonce,
/// exactly as Fabric derives it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId(pub Hash256);

impl TxId {
    /// A short prefix for logs.
    pub fn short(&self) -> String {
        self.0.short()
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.short())
    }
}

/// An endorsement-policy principal such as `Org1.peer` — the unit the policy
/// language quantifies over.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Principal {
    /// Owning organization.
    pub org: OrgId,
    /// Role within the organization (Fabric supports peer/member/admin; the
    /// experiments only distinguish `peer`).
    pub role: String,
}

impl Principal {
    /// Convenience constructor for the ubiquitous `OrgN.peer` principal.
    pub fn peer(org: OrgId) -> Self {
        Principal {
            org,
            role: "peer".to_string(),
        }
    }

    /// Parses `"Org1.peer"` into a principal.
    ///
    /// # Errors
    /// Returns `None` for anything not shaped like `Org<N>.<role>`.
    pub fn parse(s: &str) -> Option<Self> {
        let (org_part, role) = s.split_once('.')?;
        let n: u32 = org_part.strip_prefix("Org")?.parse().ok()?;
        if role.is_empty() {
            return None;
        }
        Some(Principal {
            org: OrgId(n),
            role: role.to_string(),
        })
    }
}

impl fmt::Display for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Org{}.{}", self.org.0, self.role)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_labels_are_unique_across_roles() {
        let nodes = [
            NodeId::Peer(0),
            NodeId::Orderer(0),
            NodeId::Client(0),
            NodeId::Broker(0),
            NodeId::ZooKeeper(0),
        ];
        let labels: std::collections::HashSet<_> = nodes.iter().map(|n| n.label()).collect();
        assert_eq!(labels.len(), nodes.len());
        assert_eq!(NodeId::Peer(3).index(), 3);
        assert_eq!(NodeId::Peer(3).to_string(), "peer3");
    }

    #[test]
    fn principal_parse_roundtrip() {
        let p = Principal::parse("Org2.peer").unwrap();
        assert_eq!(p, Principal::peer(OrgId(2)));
        assert_eq!(p.to_string(), "Org2.peer");
        assert_eq!(Principal::parse("Org2.admin").unwrap().role, "admin");
    }

    #[test]
    fn principal_parse_rejects_garbage() {
        for bad in ["", "Org1", "org1.peer", "OrgX.peer", "Org1.", ".peer"] {
            assert!(Principal::parse(bad).is_none(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn default_channel_name() {
        assert_eq!(ChannelId::default_channel().to_string(), "mychannel");
    }
}
