//! Transaction proposals and endorsements — the execute phase's artifacts.

use fabricsim_crypto::{sha256, PublicKey, Signature};

use crate::encode::{Encoder, WireSize, MSG_OVERHEAD};
use crate::ids::{ChannelId, ClientId, Principal, TxId};
use crate::rwset::RwSet;

/// A signed transaction proposal sent by a client to endorsing peers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Proposal {
    /// Derived transaction id (hash of creator + nonce).
    pub tx_id: TxId,
    /// Target channel.
    pub channel: ChannelId,
    /// Chaincode to invoke.
    pub chaincode: String,
    /// Invocation arguments; `args[0]` is the function name by convention.
    pub args: Vec<Vec<u8>>,
    /// The submitting client.
    pub creator: ClientId,
    /// Client nonce making the tx id unique.
    pub nonce: u64,
    /// Client signature over the canonical proposal bytes.
    pub signature: Signature,
}

impl Proposal {
    /// The canonical bytes the client signs (everything except the signature).
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new("fabricsim-proposal");
        e.bytes(self.tx_id.0.as_bytes())
            .str(&self.channel.0)
            .str(&self.chaincode)
            .list(&self.args, |e, a| {
                e.bytes(a);
            })
            .u32(self.creator.0)
            .u64(self.nonce);
        e.finish()
    }

    /// Derives the transaction id Fabric-style: `H(creator || nonce)`.
    pub fn derive_tx_id(creator: ClientId, nonce: u64) -> TxId {
        let mut e = Encoder::new("fabricsim-txid");
        e.u32(creator.0).u64(nonce);
        TxId(sha256(&e.finish()))
    }
}

impl WireSize for Proposal {
    fn wire_size(&self) -> u64 {
        let args: u64 = self.args.iter().map(|a| a.len() as u64 + 4).sum();
        // tx id + header fields + args + signature (e, s) + framing.
        MSG_OVERHEAD + 32 + self.channel.0.len() as u64 + self.chaincode.len() as u64 + args + 16
    }
}

/// One peer's endorsement: its identity, and a signature over the proposal
/// response payload (tx id + read/write set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Endorsement {
    /// The endorsing peer's principal (org + role).
    pub endorser: Principal,
    /// The endorser's enrolled public key.
    pub endorser_key: PublicKey,
    /// Signature over [`ProposalResponse::signed_bytes`].
    pub signature: Signature,
}

/// An endorsing peer's reply to a proposal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProposalResponse {
    /// Transaction this responds to.
    pub tx_id: TxId,
    /// The simulated read/write set.
    pub rw_set: RwSet,
    /// Chaincode response payload (application-level result).
    pub payload: Vec<u8>,
    /// Whether simulation succeeded on this peer.
    pub ok: bool,
    /// The endorsement (identity + signature) if `ok`.
    pub endorsement: Option<Endorsement>,
}

impl ProposalResponse {
    /// The canonical bytes the endorser signs: tx id, rw-set and payload. All
    /// endorsers of the same simulation result sign identical bytes, which is
    /// what lets the committer compare endorsements for consistency.
    pub fn signed_bytes(tx_id: TxId, rw_set: &RwSet, payload: &[u8]) -> Vec<u8> {
        let mut e = Encoder::new("fabricsim-proposal-response");
        e.bytes(tx_id.0.as_bytes());
        rw_set.encode_into(&mut e);
        e.bytes(payload);
        e.finish()
    }
}

impl WireSize for ProposalResponse {
    fn wire_size(&self) -> u64 {
        let rw: u64 = self.rw_set.write_bytes()
            + self
                .rw_set
                .reads
                .iter()
                .map(|r| r.key.len() as u64 + 13)
                .sum::<u64>();
        MSG_OVERHEAD
            + 32
            + rw
            + self.payload.len() as u64
            + if self.endorsement.is_some() { 64 } else { 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::OrgId;
    use fabricsim_crypto::KeyPair;

    fn sample_proposal() -> Proposal {
        let creator = ClientId(3);
        let nonce = 42;
        Proposal {
            tx_id: Proposal::derive_tx_id(creator, nonce),
            channel: ChannelId::default_channel(),
            chaincode: "kvwrite".into(),
            args: vec![b"put".to_vec(), b"k".to_vec(), b"v".to_vec()],
            creator,
            nonce,
            signature: KeyPair::from_seed(b"client3").sign(b"placeholder"),
        }
    }

    #[test]
    fn tx_id_is_unique_per_creator_nonce() {
        let a = Proposal::derive_tx_id(ClientId(1), 1);
        let b = Proposal::derive_tx_id(ClientId(1), 2);
        let c = Proposal::derive_tx_id(ClientId(2), 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, Proposal::derive_tx_id(ClientId(1), 1));
    }

    #[test]
    fn signed_bytes_cover_args() {
        let p = sample_proposal();
        let mut q = p.clone();
        q.args[2] = b"other".to_vec();
        assert_ne!(p.signed_bytes(), q.signed_bytes());
    }

    #[test]
    fn signed_bytes_exclude_signature() {
        let p = sample_proposal();
        let mut q = p.clone();
        q.signature = KeyPair::from_seed(b"other").sign(b"x");
        assert_eq!(p.signed_bytes(), q.signed_bytes());
    }

    #[test]
    fn response_signed_bytes_bind_rwset() {
        let tx = Proposal::derive_tx_id(ClientId(1), 1);
        let mut rw1 = RwSet::new();
        rw1.record_write("k", Some(b"1".to_vec()));
        let mut rw2 = RwSet::new();
        rw2.record_write("k", Some(b"2".to_vec()));
        assert_ne!(
            ProposalResponse::signed_bytes(tx, &rw1, b""),
            ProposalResponse::signed_bytes(tx, &rw2, b"")
        );
    }

    #[test]
    fn wire_size_grows_with_payload() {
        let p = sample_proposal();
        let base = p.wire_size();
        let mut big = p.clone();
        big.args.push(vec![0u8; 1000]);
        assert!(big.wire_size() >= base + 1000);
    }

    #[test]
    fn endorsement_carries_principal() {
        let kp = KeyPair::from_seed(b"peer0");
        let e = Endorsement {
            endorser: Principal::peer(OrgId(1)),
            endorser_key: kp.public,
            signature: kp.sign(b"resp"),
        };
        assert_eq!(e.endorser.to_string(), "Org1.peer");
    }
}
