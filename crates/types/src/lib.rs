//! # fabricsim-types — the Hyperledger Fabric domain model
//!
//! Shared, dependency-light types describing everything that flows through a
//! Fabric network: identities and principals, transaction proposals and
//! endorsements, read/write sets with MVCC versions, envelopes, blocks, and
//! channel configuration.
//!
//! Two cross-cutting concerns live here:
//!
//! * **Canonical encoding** ([`encode::Encoder`]): every signed artifact has a
//!   deterministic byte encoding (`signed_bytes`) so signatures are
//!   well-defined, and every wire message reports an [`encode::WireSize`] used
//!   by the network model to charge bandwidth.
//! * **Validation codes** ([`ValidationCode`]): the committer tags every
//!   transaction exactly like Fabric does (valid, MVCC conflict, endorsement
//!   policy failure, …); both valid and invalid transactions are recorded in
//!   the block, but only valid ones touch the world state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
pub mod codec;
mod config;
pub mod encode;
mod ids;
mod proposal;
mod rwset;
mod transaction;

pub use block::{Block, BlockHeader, BlockMetadata, ValidationCode};
pub use config::{BatchConfig, ChannelConfig, OrdererType};
pub use ids::{ChannelId, ClientId, MspId, NodeId, OrgId, Principal, TxId};
pub use proposal::{Endorsement, Proposal, ProposalResponse};
pub use rwset::{KvRead, KvWrite, RwSet, Version};
pub use transaction::Transaction;
