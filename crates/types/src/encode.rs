//! Canonical byte encoding for signed artifacts and wire-size accounting.
//!
//! Signatures must be computed over a deterministic byte string; protobuf (what
//! real Fabric uses) is replaced by a simple length-prefixed canonical encoding.
//! The same encoder doubles as the source of truth for message sizes charged to
//! the simulated 1 Gbps network.

/// Builds a canonical, unambiguous byte string from typed fields.
///
/// Every field is written as a little-endian length prefix followed by the
/// raw bytes, so `("ab", "c")` and `("a", "bc")` encode differently.
///
/// ```
/// use fabricsim_types::encode::Encoder;
/// let mut e = Encoder::new("demo");
/// e.bytes(b"ab").bytes(b"c").u64(7);
/// let a = e.finish();
/// let mut e2 = Encoder::new("demo");
/// e2.bytes(b"a").bytes(b"bc").u64(7);
/// assert_ne!(a, e2.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Starts an encoding with a domain-separation tag.
    pub fn new(domain: &str) -> Self {
        let mut e = Encoder {
            buf: Vec::with_capacity(128),
        };
        e.bytes(domain.as_bytes());
        e
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, data: &[u8]) -> &mut Self {
        self.buf
            .extend_from_slice(&(data.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(data);
        self
    }

    /// Appends a UTF-8 string.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes())
    }

    /// Appends a fixed-width u64.
    pub fn u64(&mut self, x: u64) -> &mut Self {
        self.buf.extend_from_slice(&x.to_le_bytes());
        self
    }

    /// Appends a fixed-width u32.
    pub fn u32(&mut self, x: u32) -> &mut Self {
        self.buf.extend_from_slice(&x.to_le_bytes());
        self
    }

    /// Appends a single byte.
    pub fn u8(&mut self, x: u8) -> &mut Self {
        self.buf.push(x);
        self
    }

    /// Appends a count followed by per-item encodings.
    pub fn list<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) -> &mut Self {
        self.u32(items.len() as u32);
        for item in items {
            f(self, item);
        }
        self
    }

    /// Finishes and returns the canonical bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when only the domain tag has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Types that know their encoded size on the wire (bytes), used by the DES
/// network model to charge serialization delay.
pub trait WireSize {
    /// Encoded size in bytes, including framing overhead.
    fn wire_size(&self) -> u64;
}

/// Fixed per-message overhead: gRPC/HTTP2 framing + TLS record, as on the
/// paper's testbed (TLS was enabled on peers and orderers).
pub const MSG_OVERHEAD: u64 = 120;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_prefix_disambiguates() {
        let mut a = Encoder::new("t");
        a.str("ab").str("c");
        let mut b = Encoder::new("t");
        b.str("a").str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn domains_disambiguate() {
        let mut a = Encoder::new("proposal");
        a.u64(1);
        let mut b = Encoder::new("response");
        b.u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn list_encoding_includes_count() {
        let mut a = Encoder::new("t");
        a.list(&[1u64, 2], |e, x| {
            e.u64(*x);
        });
        let mut b = Encoder::new("t");
        b.list(&[1u64, 2, 3], |e, x| {
            e.u64(*x);
        });
        let (va, vb) = (a.finish(), b.finish());
        assert_ne!(va, vb);
        assert_eq!(vb.len() - va.len(), 8);
    }

    #[test]
    fn deterministic() {
        let build = || {
            let mut e = Encoder::new("x");
            e.str("k").u64(42).u32(7).u8(1).bytes(&[0, 255]);
            e.finish()
        };
        assert_eq!(build(), build());
    }
}
