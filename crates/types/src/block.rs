//! Blocks: header, data, metadata and transaction validation codes.

use fabricsim_crypto::{sha256, Hash256, MerkleTree};

use crate::encode::{Encoder, WireSize, MSG_OVERHEAD};
use crate::ids::ChannelId;
use crate::transaction::Transaction;

/// Why a transaction was accepted or rejected by the committer. Mirrors
/// Fabric's `TxValidationCode`; both valid and invalid transactions are stored
/// in the block, but only [`ValidationCode::Valid`] ones update world state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValidationCode {
    /// The transaction passed VSCC and MVCC and updated the state.
    Valid,
    /// A read version no longer matches current state (double-spend guard).
    MvccReadConflict,
    /// The endorsement set does not satisfy the channel's policy.
    EndorsementPolicyFailure,
    /// An endorsement signature failed to verify.
    BadEndorserSignature,
    /// The creator's envelope signature failed to verify.
    BadCreatorSignature,
    /// The same tx id was already committed (replay guard).
    DuplicateTxId,
    /// The envelope was malformed (empty rw-set and payload, wrong channel…).
    BadPayload,
}

impl ValidationCode {
    /// True only for [`ValidationCode::Valid`].
    pub fn is_valid(self) -> bool {
        self == ValidationCode::Valid
    }

    /// Short stable label for metrics and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            ValidationCode::Valid => "VALID",
            ValidationCode::MvccReadConflict => "MVCC_READ_CONFLICT",
            ValidationCode::EndorsementPolicyFailure => "ENDORSEMENT_POLICY_FAILURE",
            ValidationCode::BadEndorserSignature => "BAD_ENDORSER_SIGNATURE",
            ValidationCode::BadCreatorSignature => "BAD_CREATOR_SIGNATURE",
            ValidationCode::DuplicateTxId => "DUPLICATE_TXID",
            ValidationCode::BadPayload => "BAD_PAYLOAD",
        }
    }
}

/// The block header: number, previous-hash chain link, and data hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHeader {
    /// Height of this block (genesis = 0).
    pub number: u64,
    /// Hash of the previous block's header ([`Hash256::ZERO`] for genesis).
    pub previous_hash: Hash256,
    /// Merkle root over the transaction envelopes.
    pub data_hash: Hash256,
}

impl BlockHeader {
    /// The header hash that the next block chains to.
    pub fn hash(&self) -> Hash256 {
        let mut e = Encoder::new("fabricsim-block-header");
        e.u64(self.number)
            .bytes(self.previous_hash.as_bytes())
            .bytes(self.data_hash.as_bytes());
        sha256(&e.finish())
    }
}

/// Post-validation metadata: one validation code per transaction, filled in by
/// the committing peer (empty until validation).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlockMetadata {
    /// `flags[i]` is the validation code of `transactions[i]`.
    pub flags: Vec<ValidationCode>,
}

/// A block: header + ordered transactions + (post-validation) metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The channel this block belongs to.
    pub channel: ChannelId,
    /// Block header.
    pub header: BlockHeader,
    /// The ordered transactions.
    pub transactions: Vec<Transaction>,
    /// Validation flags (empty until the committer validates the block).
    pub metadata: BlockMetadata,
}

impl Block {
    /// Assembles a block from ordered transactions, computing the data hash.
    pub fn assemble(
        channel: ChannelId,
        number: u64,
        previous_hash: Hash256,
        transactions: Vec<Transaction>,
    ) -> Self {
        let data_hash = Self::compute_data_hash(&transactions);
        Block {
            channel,
            header: BlockHeader {
                number,
                previous_hash,
                data_hash,
            },
            transactions,
            metadata: BlockMetadata::default(),
        }
    }

    /// Merkle root over the envelope hashes.
    pub fn compute_data_hash(transactions: &[Transaction]) -> Hash256 {
        let leaves: Vec<Hash256> = transactions.iter().map(|t| t.envelope_hash()).collect();
        MerkleTree::from_leaf_hashes(leaves).root()
    }

    /// Verifies the stored data hash against the transactions.
    pub fn data_hash_is_consistent(&self) -> bool {
        Self::compute_data_hash(&self.transactions) == self.header.data_hash
    }

    /// Number of transactions in the block.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether the block carries zero transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Count of transactions flagged valid (0 before validation).
    pub fn valid_count(&self) -> usize {
        self.metadata.flags.iter().filter(|f| f.is_valid()).count()
    }
}

impl WireSize for Block {
    fn wire_size(&self) -> u64 {
        let txs: u64 = self.transactions.iter().map(|t| t.wire_size()).sum();
        MSG_OVERHEAD + 8 + 32 + 32 + txs + self.metadata.flags.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;
    use crate::proposal::Proposal;
    use crate::rwset::RwSet;
    use fabricsim_crypto::KeyPair;

    fn tx(n: u64) -> Transaction {
        let creator = ClientId(0);
        let tx_id = Proposal::derive_tx_id(creator, n);
        let mut rw = RwSet::new();
        rw.record_write(&format!("k{n}"), Some(vec![n as u8]));
        Transaction {
            tx_id,
            channel: ChannelId::default_channel(),
            chaincode: "kvwrite".into(),
            rw_set: rw,
            payload: Vec::new(),
            endorsements: Vec::new(),
            creator,
            signature: KeyPair::from_seed(b"c").sign(b"x"),
        }
    }

    #[test]
    fn assemble_computes_consistent_data_hash() {
        let b = Block::assemble(
            ChannelId::default_channel(),
            1,
            Hash256::ZERO,
            vec![tx(0), tx(1)],
        );
        assert!(b.data_hash_is_consistent());
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn tampering_breaks_data_hash() {
        let mut b = Block::assemble(
            ChannelId::default_channel(),
            1,
            Hash256::ZERO,
            vec![tx(0), tx(1)],
        );
        b.transactions[0].rw_set.record_write("evil", Some(vec![9]));
        assert!(!b.data_hash_is_consistent());
    }

    #[test]
    fn header_hash_chains() {
        let b1 = Block::assemble(ChannelId::default_channel(), 1, Hash256::ZERO, vec![tx(0)]);
        let b2 = Block::assemble(
            ChannelId::default_channel(),
            2,
            b1.header.hash(),
            vec![tx(1)],
        );
        assert_eq!(b2.header.previous_hash, b1.header.hash());
        assert_ne!(b1.header.hash(), b2.header.hash());
    }

    #[test]
    fn validation_codes() {
        assert!(ValidationCode::Valid.is_valid());
        assert!(!ValidationCode::MvccReadConflict.is_valid());
        let mut b = Block::assemble(
            ChannelId::default_channel(),
            1,
            Hash256::ZERO,
            vec![tx(0), tx(1)],
        );
        assert_eq!(b.valid_count(), 0);
        b.metadata.flags = vec![ValidationCode::Valid, ValidationCode::MvccReadConflict];
        assert_eq!(b.valid_count(), 1);
        assert_eq!(ValidationCode::DuplicateTxId.label(), "DUPLICATE_TXID");
    }

    #[test]
    fn empty_block_data_hash_is_stable() {
        let a = Block::assemble(ChannelId::default_channel(), 1, Hash256::ZERO, Vec::new());
        let b = Block::assemble(ChannelId::default_channel(), 1, Hash256::ZERO, Vec::new());
        assert_eq!(a.header.data_hash, b.header.data_hash);
        assert!(a.is_empty());
    }
}
