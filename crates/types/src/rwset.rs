//! Read/write sets and MVCC versions.
//!
//! Chaincode execution during endorsement does not mutate state; it records a
//! *read set* (keys read, with the versions observed) and a *write set* (keys
//! to be written with their new values). The committer later re-checks every
//! read version against current state — Fabric's multi-version concurrency
//! control (MVCC) — and invalidates transactions whose reads went stale.

use crate::encode::Encoder;

/// The MVCC version of a committed value: the coordinates of the transaction
/// that last wrote it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Version {
    /// Block number of the writing transaction.
    pub block_num: u64,
    /// Index of the writing transaction within its block.
    pub tx_num: u32,
}

impl Version {
    /// Version of bootstrap (pre-chain) state seeded at channel setup.
    ///
    /// Uses a reserved sentinel block number so it can never collide with the
    /// version of a real committed transaction — in particular not with
    /// `(block 0, tx 0)`, whose collision would let a stale genesis read pass
    /// the MVCC check.
    pub const GENESIS: Version = Version {
        block_num: u64::MAX,
        tx_num: 0,
    };

    /// Creates a version.
    pub fn new(block_num: u64, tx_num: u32) -> Self {
        Version { block_num, tx_num }
    }
}

/// A single key read, with the version observed at simulation time
/// (`None` when the key did not exist).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KvRead {
    /// The state key.
    pub key: String,
    /// Observed version; `None` if the key was absent.
    pub version: Option<Version>,
}

/// A single key write (a delete is a write of `None`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KvWrite {
    /// The state key.
    pub key: String,
    /// New value; `None` deletes the key.
    pub value: Option<Vec<u8>>,
}

impl KvWrite {
    /// True when this write deletes the key.
    pub fn is_delete(&self) -> bool {
        self.value.is_none()
    }
}

/// The read/write set produced by simulating one transaction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RwSet {
    /// Keys read with observed versions, in read order (deduplicated).
    pub reads: Vec<KvRead>,
    /// Keys written with new values, in write order (last write per key wins).
    pub writes: Vec<KvWrite>,
}

impl RwSet {
    /// An empty read/write set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read; repeated reads of the same key keep the first
    /// observation (as Fabric's tx simulator does).
    pub fn record_read(&mut self, key: &str, version: Option<Version>) {
        if !self.reads.iter().any(|r| r.key == key) {
            self.reads.push(KvRead {
                key: key.to_string(),
                version,
            });
        }
    }

    /// Records a write; a later write to the same key replaces the earlier one.
    pub fn record_write(&mut self, key: &str, value: Option<Vec<u8>>) {
        if let Some(w) = self.writes.iter_mut().find(|w| w.key == key) {
            w.value = value;
        } else {
            self.writes.push(KvWrite {
                key: key.to_string(),
                value,
            });
        }
    }

    /// Looks up a pending write for `key` (read-your-writes support).
    pub fn pending_write(&self, key: &str) -> Option<&KvWrite> {
        self.writes.iter().find(|w| w.key == key)
    }

    /// Total bytes of written values (drives transaction wire size).
    pub fn write_bytes(&self) -> u64 {
        self.writes
            .iter()
            .map(|w| w.key.len() as u64 + w.value.as_ref().map_or(0, |v| v.len() as u64))
            .sum()
    }

    /// Canonical encoding (part of the signed proposal response).
    pub fn encode_into(&self, e: &mut Encoder) {
        e.list(&self.reads, |e, r| {
            e.str(&r.key);
            match r.version {
                Some(v) => {
                    e.u8(1).u64(v.block_num).u32(v.tx_num);
                }
                None => {
                    e.u8(0);
                }
            }
        });
        e.list(&self.writes, |e, w| {
            e.str(&w.key);
            match &w.value {
                Some(v) => {
                    e.u8(1).bytes(v);
                }
                None => {
                    e.u8(0);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_are_deduplicated_first_wins() {
        let mut rw = RwSet::new();
        rw.record_read("k", Some(Version::new(1, 0)));
        rw.record_read("k", Some(Version::new(2, 0)));
        assert_eq!(rw.reads.len(), 1);
        assert_eq!(rw.reads[0].version, Some(Version::new(1, 0)));
    }

    #[test]
    fn writes_last_wins() {
        let mut rw = RwSet::new();
        rw.record_write("k", Some(b"a".to_vec()));
        rw.record_write("k", Some(b"b".to_vec()));
        assert_eq!(rw.writes.len(), 1);
        assert_eq!(rw.writes[0].value, Some(b"b".to_vec()));
        rw.record_write("k", None);
        assert!(rw.writes[0].is_delete());
    }

    #[test]
    fn pending_write_lookup() {
        let mut rw = RwSet::new();
        assert!(rw.pending_write("k").is_none());
        rw.record_write("k", Some(b"v".to_vec()));
        assert_eq!(rw.pending_write("k").unwrap().value, Some(b"v".to_vec()));
    }

    #[test]
    fn write_bytes_counts_keys_and_values() {
        let mut rw = RwSet::new();
        rw.record_write("key", Some(vec![0u8; 10]));
        rw.record_write("k2", None);
        assert_eq!(rw.write_bytes(), 3 + 10 + 2);
    }

    #[test]
    fn encoding_distinguishes_read_version_presence() {
        let mut a = RwSet::new();
        a.record_read("k", None);
        let mut b = RwSet::new();
        b.record_read("k", Some(Version::GENESIS));
        let enc = |rw: &RwSet| {
            let mut e = Encoder::new("rw");
            rw.encode_into(&mut e);
            e.finish()
        };
        assert_ne!(enc(&a), enc(&b));
    }

    #[test]
    fn version_ordering() {
        assert!(Version::new(1, 5) < Version::new(2, 0));
        assert!(Version::new(2, 0) < Version::new(2, 1));
        assert_ne!(
            Version::GENESIS,
            Version::new(0, 0),
            "sentinel must not collide with block 0 / tx 0"
        );
    }
}
