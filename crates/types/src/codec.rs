//! Binary serialization for envelopes and blocks.
//!
//! The consensus substrates replicate opaque bytes: Raft entries and Kafka
//! records carry encoded [`Transaction`] envelopes, and Raft-mode Fabric
//! replicates whole encoded [`Block`]s. This module provides the
//! encoder/decoder pair (little-endian, length-prefixed — the same framing as
//! [`crate::encode::Encoder`]).

use std::error::Error;
use std::fmt;

use fabricsim_crypto::{Hash256, PublicKey, Signature};

use crate::block::{Block, BlockHeader, BlockMetadata, ValidationCode};
use crate::ids::{ChannelId, ClientId, Principal, TxId};
use crate::proposal::Endorsement;
use crate::rwset::{KvRead, KvWrite, RwSet, Version};
use crate::transaction::Transaction;

/// Decoding failure: truncated or malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub(crate) String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl Error for DecodeError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer {
            buf: Vec::with_capacity(256),
        }
    }
    fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }
    fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }
    fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
    fn hash(&mut self, h: &Hash256) {
        self.buf.extend_from_slice(h.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError(format!(
                "truncated: wanted {n} bytes at {}, have {}",
                self.pos,
                self.buf.len()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        // lint:allow(no-unwrap-in-lib) -- take(4) returns exactly 4 bytes
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        // lint:allow(no-unwrap-in-lib) -- take(8) returns exactly 8 bytes
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let n = self.u32()? as usize;
        if n > self.buf.len() {
            return Err(DecodeError(format!("length {n} exceeds buffer")));
        }
        Ok(self.take(n)?.to_vec())
    }
    fn str(&mut self) -> Result<String, DecodeError> {
        String::from_utf8(self.bytes()?).map_err(|_| DecodeError("invalid UTF-8".into()))
    }
    fn hash(&mut self) -> Result<Hash256, DecodeError> {
        // lint:allow(no-unwrap-in-lib) -- take(32) returns exactly 32 bytes
        Ok(Hash256::from_bytes(self.take(32)?.try_into().unwrap()))
    }
    fn finish(self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError(format!(
                "{} trailing bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn write_rwset(w: &mut Writer, rw: &RwSet) {
    w.u32(rw.reads.len() as u32);
    for r in &rw.reads {
        w.str(&r.key);
        match r.version {
            Some(v) => {
                w.u8(1);
                w.u64(v.block_num);
                w.u32(v.tx_num);
            }
            None => w.u8(0),
        }
    }
    w.u32(rw.writes.len() as u32);
    for wr in &rw.writes {
        w.str(&wr.key);
        match &wr.value {
            Some(v) => {
                w.u8(1);
                w.bytes(v);
            }
            None => w.u8(0),
        }
    }
}

fn read_rwset(r: &mut Reader<'_>) -> Result<RwSet, DecodeError> {
    let mut rw = RwSet::new();
    let n_reads = r.u32()?;
    for _ in 0..n_reads {
        let key = r.str()?;
        let version = match r.u8()? {
            1 => Some(Version::new(r.u64()?, r.u32()?)),
            0 => None,
            t => return Err(DecodeError(format!("bad version tag {t}"))),
        };
        rw.reads.push(KvRead { key, version });
    }
    let n_writes = r.u32()?;
    for _ in 0..n_writes {
        let key = r.str()?;
        let value = match r.u8()? {
            1 => Some(r.bytes()?),
            0 => None,
            t => return Err(DecodeError(format!("bad write tag {t}"))),
        };
        rw.writes.push(KvWrite { key, value });
    }
    Ok(rw)
}

fn write_tx(w: &mut Writer, tx: &Transaction) {
    w.hash(&tx.tx_id.0);
    w.str(&tx.channel.0);
    w.str(&tx.chaincode);
    write_rwset(w, &tx.rw_set);
    w.bytes(&tx.payload);
    w.u32(tx.endorsements.len() as u32);
    for e in &tx.endorsements {
        w.str(&e.endorser.to_string());
        w.u64(e.endorser_key.element());
        w.u64(e.signature.e);
        w.u64(e.signature.s);
    }
    w.u32(tx.creator.0);
    w.u64(tx.signature.e);
    w.u64(tx.signature.s);
}

fn read_tx(r: &mut Reader<'_>) -> Result<Transaction, DecodeError> {
    let tx_id = TxId(r.hash()?);
    let channel = ChannelId(r.str()?);
    let chaincode = r.str()?;
    let rw_set = read_rwset(r)?;
    let payload = r.bytes()?;
    let n_endorsements = r.u32()?;
    let mut endorsements = Vec::with_capacity(n_endorsements as usize);
    for _ in 0..n_endorsements {
        let principal_text = r.str()?;
        let endorser = Principal::parse(&principal_text)
            .ok_or_else(|| DecodeError(format!("bad principal {principal_text:?}")))?;
        let endorser_key = PublicKey::from_element(r.u64()?)
            .ok_or_else(|| DecodeError("endorser key not in group".into()))?;
        let signature = Signature {
            e: r.u64()?,
            s: r.u64()?,
        };
        endorsements.push(Endorsement {
            endorser,
            endorser_key,
            signature,
        });
    }
    let creator = ClientId(r.u32()?);
    let signature = Signature {
        e: r.u64()?,
        s: r.u64()?,
    };
    Ok(Transaction {
        tx_id,
        channel,
        chaincode,
        rw_set,
        payload,
        endorsements,
        creator,
        signature,
    })
}

/// Serializes a transaction envelope.
pub fn encode_tx(tx: &Transaction) -> Vec<u8> {
    let mut w = Writer::new();
    write_tx(&mut w, tx);
    w.buf
}

/// Deserializes a transaction envelope.
///
/// # Errors
/// [`DecodeError`] on truncated or malformed input.
pub fn decode_tx(bytes: &[u8]) -> Result<Transaction, DecodeError> {
    let mut r = Reader::new(bytes);
    let tx = read_tx(&mut r)?;
    r.finish()?;
    Ok(tx)
}

fn code_to_u8(c: ValidationCode) -> u8 {
    match c {
        ValidationCode::Valid => 0,
        ValidationCode::MvccReadConflict => 1,
        ValidationCode::EndorsementPolicyFailure => 2,
        ValidationCode::BadEndorserSignature => 3,
        ValidationCode::BadCreatorSignature => 4,
        ValidationCode::DuplicateTxId => 5,
        ValidationCode::BadPayload => 6,
    }
}

fn code_from_u8(x: u8) -> Result<ValidationCode, DecodeError> {
    Ok(match x {
        0 => ValidationCode::Valid,
        1 => ValidationCode::MvccReadConflict,
        2 => ValidationCode::EndorsementPolicyFailure,
        3 => ValidationCode::BadEndorserSignature,
        4 => ValidationCode::BadCreatorSignature,
        5 => ValidationCode::DuplicateTxId,
        6 => ValidationCode::BadPayload,
        other => return Err(DecodeError(format!("bad validation code {other}"))),
    })
}

/// Serializes a block (header, transactions and metadata).
pub fn encode_block(block: &Block) -> Vec<u8> {
    let mut w = Writer::new();
    w.str(&block.channel.0);
    w.u64(block.header.number);
    w.hash(&block.header.previous_hash);
    w.hash(&block.header.data_hash);
    w.u32(block.transactions.len() as u32);
    for tx in &block.transactions {
        write_tx(&mut w, tx);
    }
    w.u32(block.metadata.flags.len() as u32);
    for &f in &block.metadata.flags {
        w.u8(code_to_u8(f));
    }
    w.buf
}

/// Deserializes a block.
///
/// # Errors
/// [`DecodeError`] on truncated or malformed input.
pub fn decode_block(bytes: &[u8]) -> Result<Block, DecodeError> {
    let mut r = Reader::new(bytes);
    let channel = ChannelId(r.str()?);
    let number = r.u64()?;
    let previous_hash = r.hash()?;
    let data_hash = r.hash()?;
    let n_txs = r.u32()?;
    let mut transactions = Vec::with_capacity(n_txs as usize);
    for _ in 0..n_txs {
        transactions.push(read_tx(&mut r)?);
    }
    let n_flags = r.u32()?;
    let mut flags = Vec::with_capacity(n_flags as usize);
    for _ in 0..n_flags {
        flags.push(code_from_u8(r.u8()?)?);
    }
    r.finish()?;
    Ok(Block {
        channel,
        header: BlockHeader {
            number,
            previous_hash,
            data_hash,
        },
        transactions,
        metadata: BlockMetadata { flags },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::OrgId;
    use crate::proposal::Proposal;
    use fabricsim_crypto::KeyPair;

    fn sample_tx(nonce: u64, endorsements: usize) -> Transaction {
        let creator = ClientId(2);
        let tx_id = Proposal::derive_tx_id(creator, nonce);
        let mut rw = RwSet::new();
        rw.record_read("r1", Some(Version::new(4, 2)));
        rw.record_read("r2", None);
        rw.record_write("w1", Some(vec![1, 2, 3]));
        rw.record_write("w2", None);
        let resp = crate::proposal::ProposalResponse::signed_bytes(tx_id, &rw, b"pay");
        Transaction {
            tx_id,
            channel: ChannelId::default_channel(),
            chaincode: "asset-transfer".into(),
            rw_set: rw,
            payload: b"pay".to_vec(),
            endorsements: (0..endorsements)
                .map(|i| {
                    let kp = KeyPair::from_seed(format!("p{i}").as_bytes());
                    Endorsement {
                        endorser: Principal::peer(OrgId(i as u32 + 1)),
                        endorser_key: kp.public,
                        signature: kp.sign(&resp),
                    }
                })
                .collect(),
            creator,
            signature: KeyPair::from_seed(b"client").sign(b"env"),
        }
    }

    #[test]
    fn tx_roundtrip() {
        for endorsements in [0, 1, 5] {
            let tx = sample_tx(7, endorsements);
            let bytes = encode_tx(&tx);
            assert_eq!(decode_tx(&bytes).unwrap(), tx);
        }
    }

    #[test]
    fn block_roundtrip_with_metadata() {
        let mut block = Block::assemble(
            ChannelId::default_channel(),
            3,
            Hash256::from_bytes([9; 32]),
            vec![sample_tx(1, 1), sample_tx(2, 3)],
        );
        block.metadata.flags = vec![ValidationCode::Valid, ValidationCode::MvccReadConflict];
        let bytes = encode_block(&block);
        let back = decode_block(&bytes).unwrap();
        assert_eq!(back, block);
        assert!(back.data_hash_is_consistent());
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let bytes = encode_tx(&sample_tx(1, 2));
        for cut in [0, 1, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_tx(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_fails() {
        let mut bytes = encode_tx(&sample_tx(1, 0));
        bytes.push(0);
        assert!(decode_tx(&bytes).is_err());
    }

    #[test]
    fn corrupted_key_element_fails() {
        let tx = sample_tx(1, 1);
        let bytes = encode_tx(&tx);
        // Flip a byte in the endorser key region and expect either a decode
        // error or a changed (non-equal) decode — never a panic.
        let mut corrupted = bytes.clone();
        let idx = bytes.len() - 30;
        corrupted[idx] ^= 0xFF;
        if let Ok(t) = decode_tx(&corrupted) {
            assert_ne!(t, tx)
        }
    }

    #[test]
    fn all_validation_codes_roundtrip() {
        for code in [
            ValidationCode::Valid,
            ValidationCode::MvccReadConflict,
            ValidationCode::EndorsementPolicyFailure,
            ValidationCode::BadEndorserSignature,
            ValidationCode::BadCreatorSignature,
            ValidationCode::DuplicateTxId,
            ValidationCode::BadPayload,
        ] {
            assert_eq!(code_from_u8(code_to_u8(code)).unwrap(), code);
        }
        assert!(code_from_u8(99).is_err());
    }
}
