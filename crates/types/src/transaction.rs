//! The transaction envelope submitted to the ordering service.

use fabricsim_crypto::{sha256, Hash256, Signature};

use crate::encode::{Encoder, WireSize, MSG_OVERHEAD};
use crate::ids::{ChannelId, ClientId, TxId};
use crate::proposal::Endorsement;
use crate::rwset::RwSet;

/// A fully endorsed transaction, assembled by the client from the proposal
/// responses and broadcast to the ordering service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Transaction id (from the original proposal).
    pub tx_id: TxId,
    /// Channel the transaction commits on.
    pub channel: ChannelId,
    /// Chaincode that produced the read/write set.
    pub chaincode: String,
    /// The agreed read/write set (all endorsers simulated identically).
    pub rw_set: RwSet,
    /// Response payload from the chaincode.
    pub payload: Vec<u8>,
    /// Collected endorsements (one per endorsing peer).
    pub endorsements: Vec<Endorsement>,
    /// Submitting client.
    pub creator: ClientId,
    /// Client signature over the envelope.
    pub signature: Signature,
}

impl Transaction {
    /// Canonical envelope bytes signed by the client.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new("fabricsim-envelope");
        e.bytes(self.tx_id.0.as_bytes())
            .str(&self.channel.0)
            .str(&self.chaincode);
        self.rw_set.encode_into(&mut e);
        e.bytes(&self.payload)
            .list(&self.endorsements, |e, en| {
                e.str(&en.endorser.to_string())
                    .u64(en.endorser_key.element())
                    .u64(en.signature.e)
                    .u64(en.signature.s);
            })
            .u32(self.creator.0);
        e.finish()
    }

    /// The bytes each endorser signed (must match for the endorsement to
    /// verify during VSCC).
    pub fn response_bytes(&self) -> Vec<u8> {
        crate::proposal::ProposalResponse::signed_bytes(self.tx_id, &self.rw_set, &self.payload)
    }

    /// Hash of the full envelope, used in block data hashing.
    pub fn envelope_hash(&self) -> Hash256 {
        sha256(&self.signed_bytes())
    }
}

impl WireSize for Transaction {
    fn wire_size(&self) -> u64 {
        let rw: u64 = self.rw_set.write_bytes()
            + self
                .rw_set
                .reads
                .iter()
                .map(|r| r.key.len() as u64 + 13)
                .sum::<u64>();
        // Each endorsement carries identity (~40B cert ref) + key + signature.
        let endorsements = self.endorsements.len() as u64 * 72;
        MSG_OVERHEAD + 32 + rw + self.payload.len() as u64 + endorsements + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{OrgId, Principal};
    use crate::proposal::Proposal;
    use fabricsim_crypto::KeyPair;

    fn sample_tx(n_endorsements: usize) -> Transaction {
        let creator = ClientId(1);
        let tx_id = Proposal::derive_tx_id(creator, 7);
        let mut rw = RwSet::new();
        rw.record_write("k", Some(vec![0u8; 1]));
        let resp = crate::proposal::ProposalResponse::signed_bytes(tx_id, &rw, b"");
        let endorsements = (0..n_endorsements)
            .map(|i| {
                let kp = KeyPair::from_seed(format!("peer{i}").as_bytes());
                Endorsement {
                    endorser: Principal::peer(OrgId(i as u32 + 1)),
                    endorser_key: kp.public,
                    signature: kp.sign(&resp),
                }
            })
            .collect();
        Transaction {
            tx_id,
            channel: ChannelId::default_channel(),
            chaincode: "kvwrite".into(),
            rw_set: rw,
            payload: Vec::new(),
            endorsements,
            creator,
            signature: KeyPair::from_seed(b"client1").sign(b"envelope"),
        }
    }

    #[test]
    fn endorsements_verify_against_response_bytes() {
        let tx = sample_tx(3);
        let resp = tx.response_bytes();
        for e in &tx.endorsements {
            assert!(e.endorser_key.verify(&resp, &e.signature));
        }
    }

    #[test]
    fn envelope_hash_changes_with_content() {
        let a = sample_tx(1);
        let mut b = a.clone();
        b.rw_set.record_write("other", Some(vec![1]));
        assert_ne!(a.envelope_hash(), b.envelope_hash());
    }

    #[test]
    fn wire_size_grows_with_endorsements() {
        let one = sample_tx(1).wire_size();
        let five = sample_tx(5).wire_size();
        assert_eq!(five - one, 4 * 72);
    }

    #[test]
    fn signed_bytes_cover_endorsement_list() {
        let a = sample_tx(2);
        let mut b = a.clone();
        b.endorsements.pop();
        assert_ne!(a.signed_bytes(), b.signed_bytes());
    }
}
