//! Property-based tests: the codec is a lossless inverse pair for arbitrary
//! transactions and blocks, and block hashing is structure-sensitive.

// QUARANTINED (ISSUE 1 satellite: seed-test triage). This property suite
// depends on the external `proptest` crate, which cannot be fetched in the
// offline build environment, so the whole workspace failed to resolve. The
// suite is gated behind the default-off `proptests` feature; to run it,
// restore `proptest = "1"` as a dev-dependency of this crate and pass
// `--features proptests`. The deterministic unit/integration tests retain
// coverage of the same invariants at fixed seeds.
#![cfg(feature = "proptests")]

use proptest::prelude::*;

use fabricsim_crypto::{Hash256, KeyPair};
use fabricsim_types::codec::{decode_block, decode_tx, encode_block, encode_tx};
use fabricsim_types::{
    Block, ChannelId, ClientId, Endorsement, KvRead, KvWrite, OrgId, Principal, Proposal,
    ProposalResponse, RwSet, Transaction, ValidationCode, Version,
};

fn arb_version() -> impl Strategy<Value = Option<Version>> {
    proptest::option::of((any::<u64>(), any::<u32>()).prop_map(|(b, t)| Version::new(b, t)))
}

fn arb_rwset() -> impl Strategy<Value = RwSet> {
    (
        proptest::collection::vec(("[a-z]{1,12}", arb_version()), 0..6),
        proptest::collection::vec(
            (
                "[a-z]{1,12}",
                proptest::option::of(proptest::collection::vec(any::<u8>(), 0..64)),
            ),
            0..6,
        ),
    )
        .prop_map(|(reads, writes)| {
            let mut rw = RwSet::new();
            for (k, v) in reads {
                rw.reads.push(KvRead { key: k, version: v });
            }
            for (k, v) in writes {
                rw.writes.push(KvWrite { key: k, value: v });
            }
            rw
        })
}

fn arb_tx() -> impl Strategy<Value = Transaction> {
    (
        any::<u32>(),   // creator
        any::<u64>(),   // nonce
        "[a-z-]{1,16}", // chaincode
        arb_rwset(),
        proptest::collection::vec(any::<u8>(), 0..128), // payload
        proptest::collection::vec((1u32..20, any::<u64>()), 0..6), // endorsers
    )
        .prop_map(|(creator, nonce, chaincode, rw_set, payload, endorsers)| {
            let creator = ClientId(creator);
            let tx_id = Proposal::derive_tx_id(creator, nonce);
            let resp = ProposalResponse::signed_bytes(tx_id, &rw_set, &payload);
            let endorsements = endorsers
                .into_iter()
                .map(|(org, seed)| {
                    let kp = KeyPair::from_seed(&seed.to_le_bytes());
                    Endorsement {
                        endorser: Principal::peer(OrgId(org)),
                        endorser_key: kp.public,
                        signature: kp.sign(&resp),
                    }
                })
                .collect();
            Transaction {
                tx_id,
                channel: ChannelId::default_channel(),
                chaincode,
                rw_set,
                payload,
                endorsements,
                creator,
                signature: KeyPair::from_seed(b"client").sign(&resp),
            }
        })
}

proptest! {
    #[test]
    fn tx_codec_roundtrips(tx in arb_tx()) {
        let bytes = encode_tx(&tx);
        prop_assert_eq!(decode_tx(&bytes).unwrap(), tx);
    }

    #[test]
    fn tx_decode_never_panics_on_corruption(tx in arb_tx(), cut in any::<proptest::sample::Index>(), flip in any::<proptest::sample::Index>()) {
        let mut bytes = encode_tx(&tx);
        // Truncation must error, not panic.
        let cut_at = cut.index(bytes.len());
        let _ = decode_tx(&bytes[..cut_at]);
        // Bit flips must either error or decode to a different value.
        let i = flip.index(bytes.len());
        bytes[i] ^= 0x55;
        if let Ok(decoded) = decode_tx(&bytes) { prop_assert_ne!(decoded, tx) }
    }

    #[test]
    fn block_codec_roundtrips(txs in proptest::collection::vec(arb_tx(), 0..5), flags in proptest::collection::vec(0u8..7, 0..5)) {
        let mut block = Block::assemble(ChannelId::default_channel(), 7, Hash256::from_bytes([3; 32]), txs);
        block.metadata.flags = flags
            .into_iter()
            .map(|f| match f {
                0 => ValidationCode::Valid,
                1 => ValidationCode::MvccReadConflict,
                2 => ValidationCode::EndorsementPolicyFailure,
                3 => ValidationCode::BadEndorserSignature,
                4 => ValidationCode::BadCreatorSignature,
                5 => ValidationCode::DuplicateTxId,
                _ => ValidationCode::BadPayload,
            })
            .collect();
        let bytes = encode_block(&block);
        let back = decode_block(&bytes).unwrap();
        prop_assert_eq!(back, block);
    }

    #[test]
    fn block_data_hash_is_content_sensitive(txs in proptest::collection::vec(arb_tx(), 1..5)) {
        let block = Block::assemble(ChannelId::default_channel(), 0, Hash256::ZERO, txs.clone());
        prop_assert!(block.data_hash_is_consistent());
        // Dropping any transaction breaks the data hash.
        for i in 0..txs.len() {
            let mut fewer = txs.clone();
            fewer.remove(i);
            let other = Block::assemble(ChannelId::default_channel(), 0, Hash256::ZERO, fewer);
            prop_assert_ne!(other.header.data_hash, block.header.data_hash);
        }
    }

    #[test]
    fn signed_bytes_are_injective_on_rwset(a in arb_rwset(), b in arb_rwset()) {
        let tx_id = Proposal::derive_tx_id(ClientId(0), 0);
        let ba = ProposalResponse::signed_bytes(tx_id, &a, b"");
        let bb = ProposalResponse::signed_bytes(tx_id, &b, b"");
        if a == b {
            prop_assert_eq!(ba, bb);
        } else {
            prop_assert_ne!(ba, bb);
        }
    }
}
