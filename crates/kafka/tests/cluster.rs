//! Cluster-level simulation of brokers + ZooKeeper: replication, consumption
//! and failover driven through the public state-machine APIs, with message
//! routing performed by a miniature host harness.

use std::collections::VecDeque;

use fabricsim_kafka::{
    Broker, BrokerEffect, BrokerId, BrokerMsg, ClientEvent, KafkaConfig, Record, ZkEffect,
    ZkEnsemble, ZkMsg,
};

struct Cluster {
    brokers: Vec<Broker>,
    alive: Vec<bool>,
    zk: ZkEnsemble,
    broker_queue: VecDeque<(usize, BrokerMsg)>,
    client_events: Vec<(u64, ClientEvent)>,
}

impl Cluster {
    fn new(n: u32) -> Self {
        let ids: Vec<BrokerId> = (0..n).collect();
        let mut c = Cluster {
            brokers: ids
                .iter()
                .map(|&i| Broker::new(i, KafkaConfig::default()))
                .collect(),
            alive: vec![true; n as usize],
            zk: ZkEnsemble::new(3, ids, 3),
            broker_queue: VecDeque::new(),
            client_events: Vec::new(),
        };
        // Initial heartbeats elect a leader and appoint followers.
        for i in 0..n {
            c.zk_step(ZkMsg::Heartbeat { from: i });
        }
        c.settle(50);
        c
    }

    fn zk_step(&mut self, msg: ZkMsg) {
        for effect in self.zk.step(msg) {
            self.apply_zk(effect);
        }
    }

    fn apply_zk(&mut self, effect: ZkEffect) {
        match effect {
            ZkEffect::AppointLeader {
                broker,
                epoch,
                replicas,
            } => self.broker_queue.push_back((
                broker as usize,
                BrokerMsg::AppointLeader { epoch, replicas },
            )),
            ZkEffect::AppointFollower {
                broker,
                leader,
                epoch,
            } => self.broker_queue.push_back((
                broker as usize,
                BrokerMsg::AppointFollower { epoch, leader },
            )),
        }
    }

    fn apply_broker(&mut self, b: usize, effects: Vec<BrokerEffect>) {
        for effect in effects {
            match effect {
                BrokerEffect::Send { to, message } => {
                    self.broker_queue.push_back((to as usize, message));
                }
                BrokerEffect::Reply { to, event } => self.client_events.push((to, event)),
                BrokerEffect::IsrUpdate { isr } => {
                    let from = self.brokers[b].id();
                    self.zk_step(ZkMsg::IsrUpdate { from, isr });
                }
            }
        }
    }

    /// Drains queued messages and runs broker/zk ticks for `rounds`.
    fn settle(&mut self, rounds: usize) {
        for _ in 0..rounds {
            while let Some((to, msg)) = self.broker_queue.pop_front() {
                if !self.alive[to] {
                    continue;
                }
                let effects = self.brokers[to].step(msg);
                self.apply_broker(to, effects);
            }
            for b in 0..self.brokers.len() {
                if self.alive[b] {
                    let effects = self.brokers[b].tick();
                    self.apply_broker(b, effects);
                    self.zk_step(ZkMsg::Heartbeat {
                        from: self.brokers[b].id(),
                    });
                }
            }
            for effect in self.zk.tick() {
                self.apply_zk(effect);
            }
        }
    }

    fn leader(&self) -> usize {
        self.zk.leader().expect("a leader exists") as usize
    }

    fn produce(&mut self, data: &[u8]) {
        let l = self.leader();
        let effects = self.brokers[l].step(BrokerMsg::Produce {
            reply_to: 99,
            record: Record::payload(data.to_vec()),
        });
        self.apply_broker(l, effects);
    }

    fn consume_all(&mut self) -> Vec<Record> {
        let l = self.leader();
        let effects = self.brokers[l].step(BrokerMsg::Consume {
            reply_to: 99,
            offset: 0,
        });
        self.apply_broker(l, effects);
        match self.client_events.pop() {
            Some((_, ClientEvent::ConsumeBatch { records, .. })) => records,
            other => panic!("expected a consume batch, got {other:?}"),
        }
    }
}

#[test]
fn cluster_elects_replicates_and_serves() {
    let mut c = Cluster::new(3);
    assert_eq!(c.leader(), 0);
    for i in 0..10u8 {
        c.produce(&[i]);
    }
    c.settle(10);
    let records = c.consume_all();
    assert_eq!(records.len(), 10, "all records replicated past the HW");
    assert_eq!(records[3].data, vec![3]);
    // Followers converged byte-for-byte.
    for b in 1..3 {
        assert_eq!(c.brokers[b].log_end(), 10);
        assert_eq!(c.brokers[b].high_watermark(), 10);
    }
}

#[test]
fn leader_crash_fails_over_without_losing_committed_records() {
    let mut c = Cluster::new(3);
    for i in 0..5u8 {
        c.produce(&[i]);
    }
    c.settle(10);
    assert_eq!(c.consume_all().len(), 5);

    // Kill the leader; ZK expires its session and appoints a follower.
    let dead = c.leader();
    c.alive[dead] = false;
    c.settle(10);
    let new_leader = c.leader();
    assert_ne!(new_leader, dead, "a new leader is appointed");

    // The committed prefix survives, and the partition accepts new records.
    for i in 5..8u8 {
        c.produce(&[i]);
    }
    c.settle(10);
    let records = c.consume_all();
    assert!(records.len() >= 8, "committed prefix + new records served");
    for (i, r) in records.iter().take(8).enumerate() {
        assert_eq!(r.data, vec![i as u8], "record {i} preserved in order");
    }
}

#[test]
fn follower_crash_shrinks_isr_and_hw_advances() {
    let mut c = Cluster::new(3);
    for i in 0..3u8 {
        c.produce(&[i]);
    }
    c.settle(10);
    let leader = c.leader();
    let follower = (0..3).find(|&b| b != leader).unwrap();
    c.alive[follower] = false;

    // More production: the dead follower would block the HW until the ISR
    // shrinks it out.
    for i in 3..6u8 {
        c.produce(&[i]);
    }
    c.settle(40); // enough ticks for isr_lag_ticks to expire
    assert_eq!(
        c.brokers[leader].high_watermark(),
        6,
        "ISR shrink lets the high watermark advance"
    );
    assert!(!c.brokers[leader].isr().contains(&(follower as u32)));
    assert_eq!(c.consume_all().len(), 6);
}
