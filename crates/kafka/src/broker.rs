//! Broker state machine: the partition log, leader/follower replication and
//! the in-sync-replica protocol.

use std::collections::{BTreeMap, BTreeSet};

use crate::{BrokerId, ClientToken, Epoch, Offset};

/// One record in the partition log (an opaque transaction envelope for the
/// Fabric ordering service, plus a marker bit for timer records).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Payload bytes.
    pub data: Vec<u8>,
    /// True for the leader OSN's block-timeout marker records (Fabric posts a
    /// `TTC-X` message to Kafka so all OSNs cut time-based blocks identically).
    pub is_timer_marker: bool,
}

impl Record {
    /// A payload record.
    pub fn payload(data: Vec<u8>) -> Self {
        Record {
            data,
            is_timer_marker: false,
        }
    }

    /// A block-timeout marker record.
    pub fn timer_marker() -> Self {
        Record {
            data: Vec::new(),
            is_timer_marker: true,
        }
    }
}

/// Broker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KafkaConfig {
    /// How many replicas (including the leader) host the partition.
    pub replication_factor: usize,
    /// Ticks a follower may lag (no fetch progress to log-end) before the
    /// leader shrinks it out of the ISR.
    pub isr_lag_ticks: u32,
    /// Maximum records returned per fetch/consume.
    pub max_fetch_records: usize,
}

impl Default for KafkaConfig {
    fn default() -> Self {
        // The paper's defaults: replication factor 3.
        KafkaConfig {
            replication_factor: 3,
            isr_lag_ticks: 20,
            max_fetch_records: 1024,
        }
    }
}

/// A broker's current role for the (single) partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerRole {
    /// Leader: accepts produce requests, tracks the ISR.
    Leader,
    /// Follower replicating from `leader`.
    Follower {
        /// The partition leader it fetches from.
        leader: BrokerId,
    },
    /// Not a replica of this partition (or awaiting appointment).
    Idle,
}

/// Messages between brokers and from clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerMsg {
    /// Client produce request.
    Produce {
        /// Reply-to token for the acknowledgment.
        reply_to: ClientToken,
        /// The record to append.
        record: Record,
    },
    /// Client consume request: records in `[offset, high watermark)`.
    Consume {
        /// Reply-to token.
        reply_to: ClientToken,
        /// First offset wanted.
        offset: Offset,
    },
    /// Follower pulls records starting at `offset` (its log end).
    Fetch {
        /// The fetching follower.
        from: BrokerId,
        /// Follower's log-end offset.
        offset: Offset,
    },
    /// Leader's reply to a fetch.
    FetchResponse {
        /// Leadership epoch (stale epochs are ignored).
        epoch: Epoch,
        /// Records starting at the follower's requested offset.
        records: Vec<Record>,
        /// Offset of the first record in `records`.
        base_offset: Offset,
        /// Leader's high watermark.
        high_watermark: Offset,
    },
    /// ZooKeeper appoints this broker leader (with the replica set).
    AppointLeader {
        /// New leadership epoch.
        epoch: Epoch,
        /// All replicas of the partition.
        replicas: Vec<BrokerId>,
    },
    /// ZooKeeper appoints this broker follower of `leader`.
    AppointFollower {
        /// New leadership epoch.
        epoch: Epoch,
        /// The leader to fetch from.
        leader: BrokerId,
    },
}

/// Events delivered back to producers/consumers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientEvent {
    /// Produce accepted; the record sits at `offset` (not yet necessarily
    /// replicated — consumability is gated by the high watermark).
    ProduceAck {
        /// Assigned offset.
        offset: Offset,
    },
    /// Produce refused because this broker is not the leader.
    NotLeader {
        /// Best-known leader.
        leader_hint: Option<BrokerId>,
    },
    /// Consume response: records from `base_offset`, bounded by the HW.
    ConsumeBatch {
        /// Offset of the first returned record.
        base_offset: Offset,
        /// The records.
        records: Vec<Record>,
        /// Current high watermark (consumers poll again from `base + len`).
        high_watermark: Offset,
    },
}

/// What the host must do after driving a broker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerEffect {
    /// Send a broker-to-broker message.
    Send {
        /// Destination broker.
        to: BrokerId,
        /// The message.
        message: BrokerMsg,
    },
    /// Deliver an event to a client.
    Reply {
        /// The client token from the request.
        to: ClientToken,
        /// The event.
        event: ClientEvent,
    },
    /// Tell ZooKeeper the ISR changed (leader only).
    IsrUpdate {
        /// The new in-sync replica set.
        isr: Vec<BrokerId>,
    },
}

/// A Kafka broker hosting (a replica of) the channel's partition.
#[derive(Debug, Clone)]
pub struct Broker {
    id: BrokerId,
    config: KafkaConfig,
    role: BrokerRole,
    epoch: Epoch,
    log: Vec<Record>,
    high_watermark: Offset,
    // Leader state: per-replica log-end offsets and lag timers.
    replica_log_end: BTreeMap<BrokerId, Offset>,
    replica_lag: BTreeMap<BrokerId, u32>,
    isr: BTreeSet<BrokerId>,
}

impl Broker {
    /// Creates an idle broker.
    pub fn new(id: BrokerId, config: KafkaConfig) -> Self {
        Broker {
            id,
            config,
            role: BrokerRole::Idle,
            epoch: 0,
            log: Vec::new(),
            high_watermark: 0,
            replica_log_end: BTreeMap::new(),
            replica_lag: BTreeMap::new(),
            isr: BTreeSet::new(),
        }
    }

    /// This broker's id.
    pub fn id(&self) -> BrokerId {
        self.id
    }

    /// Current role.
    pub fn role(&self) -> &BrokerRole {
        &self.role
    }

    /// Current leadership epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Log-end offset (next offset to be assigned).
    pub fn log_end(&self) -> Offset {
        self.log.len() as Offset
    }

    /// The high watermark: records below it are replicated to every ISR
    /// member and visible to consumers.
    pub fn high_watermark(&self) -> Offset {
        self.high_watermark
    }

    /// The current in-sync replica set (meaningful on the leader).
    pub fn isr(&self) -> Vec<BrokerId> {
        self.isr.iter().copied().collect()
    }

    /// Drives time: followers issue fetches; the leader ages follower lag and
    /// shrinks the ISR.
    pub fn tick(&mut self) -> Vec<BrokerEffect> {
        let mut effects = Vec::new();
        match &self.role {
            BrokerRole::Follower { leader } => {
                effects.push(BrokerEffect::Send {
                    to: *leader,
                    message: BrokerMsg::Fetch {
                        from: self.id,
                        offset: self.log_end(),
                    },
                });
            }
            BrokerRole::Leader => {
                let mut shrunk = false;
                let log_end = self.log_end();
                for (&replica, lag) in self.replica_lag.iter_mut() {
                    if replica == self.id {
                        continue;
                    }
                    let caught_up = self.replica_log_end.get(&replica) == Some(&log_end);
                    if caught_up {
                        *lag = 0;
                    } else {
                        *lag += 1;
                        if *lag > self.config.isr_lag_ticks && self.isr.remove(&replica) {
                            shrunk = true;
                        }
                    }
                }
                if shrunk {
                    self.advance_high_watermark();
                    effects.push(BrokerEffect::IsrUpdate { isr: self.isr() });
                }
            }
            BrokerRole::Idle => {}
        }
        effects
    }

    /// Processes a message.
    pub fn step(&mut self, message: BrokerMsg) -> Vec<BrokerEffect> {
        let mut effects = Vec::new();
        match message {
            BrokerMsg::Produce { reply_to, record } => {
                if self.role != BrokerRole::Leader {
                    let leader_hint = match &self.role {
                        BrokerRole::Follower { leader } => Some(*leader),
                        _ => None,
                    };
                    effects.push(BrokerEffect::Reply {
                        to: reply_to,
                        event: ClientEvent::NotLeader { leader_hint },
                    });
                    return effects;
                }
                let offset = self.log_end();
                self.log.push(record);
                self.replica_log_end.insert(self.id, self.log_end());
                self.advance_high_watermark();
                effects.push(BrokerEffect::Reply {
                    to: reply_to,
                    event: ClientEvent::ProduceAck { offset },
                });
            }
            BrokerMsg::Consume { reply_to, offset } => {
                let hw = self.high_watermark;
                let base = offset.min(hw);
                let upper = hw.min(base + self.config.max_fetch_records as Offset);
                let records = self.log[base as usize..upper as usize].to_vec();
                effects.push(BrokerEffect::Reply {
                    to: reply_to,
                    event: ClientEvent::ConsumeBatch {
                        base_offset: base,
                        records,
                        high_watermark: hw,
                    },
                });
            }
            BrokerMsg::Fetch { from, offset } => {
                if self.role != BrokerRole::Leader {
                    return effects;
                }
                self.replica_log_end.insert(from, offset);
                self.replica_lag.entry(from).or_insert(0);
                // ISR expansion: a caught-up replica rejoins.
                if offset == self.log_end() && self.isr.insert(from) {
                    effects.push(BrokerEffect::IsrUpdate { isr: self.isr() });
                }
                self.advance_high_watermark();
                let upper = self
                    .log_end()
                    .min(offset + self.config.max_fetch_records as Offset);
                let records = self
                    .log
                    .get(offset as usize..upper as usize)
                    .unwrap_or(&[])
                    .to_vec();
                effects.push(BrokerEffect::Send {
                    to: from,
                    message: BrokerMsg::FetchResponse {
                        epoch: self.epoch,
                        records,
                        base_offset: offset,
                        high_watermark: self.high_watermark,
                    },
                });
            }
            BrokerMsg::FetchResponse {
                epoch,
                records,
                base_offset,
                high_watermark,
            } => {
                if epoch < self.epoch || !matches!(self.role, BrokerRole::Follower { .. }) {
                    return effects;
                }
                // Only append contiguously.
                if base_offset == self.log_end() {
                    self.log.extend(records);
                } else if base_offset < self.log_end() {
                    // Overlap from a retried fetch: truncate and re-append to
                    // stay consistent with the leader.
                    self.log.truncate(base_offset as usize);
                    self.log.extend(records);
                }
                self.high_watermark = high_watermark.min(self.log_end());
            }
            BrokerMsg::AppointLeader { epoch, replicas } => {
                if epoch <= self.epoch && self.role == BrokerRole::Leader {
                    return effects;
                }
                self.epoch = epoch;
                self.role = BrokerRole::Leader;
                self.replica_log_end = replicas.iter().map(|&r| (r, 0)).collect();
                self.replica_log_end.insert(self.id, self.log_end());
                self.replica_lag = replicas
                    .iter()
                    .filter(|&&r| r != self.id)
                    .map(|&r| (r, 0))
                    .collect();
                // A fresh leader starts with ISR = {self}; followers rejoin as
                // their fetches catch up.
                self.isr = BTreeSet::from([self.id]);
                self.advance_high_watermark();
                effects.push(BrokerEffect::IsrUpdate { isr: self.isr() });
            }
            BrokerMsg::AppointFollower { epoch, leader } => {
                if epoch < self.epoch {
                    return effects;
                }
                self.epoch = epoch;
                self.role = BrokerRole::Follower { leader };
            }
        }
        effects
    }

    fn advance_high_watermark(&mut self) {
        if self.role != BrokerRole::Leader {
            return;
        }
        // HW = min log-end across the ISR.
        let min_isr = self
            .isr
            .iter()
            .map(|r| self.replica_log_end.get(r).copied().unwrap_or(0))
            .min()
            .unwrap_or(0);
        if min_isr > self.high_watermark {
            self.high_watermark = min_isr;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leader_with_replicas(replicas: &[BrokerId]) -> Broker {
        let mut b = Broker::new(replicas[0], KafkaConfig::default());
        b.step(BrokerMsg::AppointLeader {
            epoch: 1,
            replicas: replicas.to_vec(),
        });
        b
    }

    #[test]
    fn idle_broker_rejects_produce() {
        let mut b = Broker::new(1, KafkaConfig::default());
        let effects = b.step(BrokerMsg::Produce {
            reply_to: 7,
            record: Record::payload(b"tx".to_vec()),
        });
        assert_eq!(
            effects,
            vec![BrokerEffect::Reply {
                to: 7,
                event: ClientEvent::NotLeader { leader_hint: None }
            }]
        );
    }

    #[test]
    fn single_replica_leader_commits_immediately() {
        let mut b = leader_with_replicas(&[1]);
        let effects = b.step(BrokerMsg::Produce {
            reply_to: 7,
            record: Record::payload(b"tx".to_vec()),
        });
        assert!(matches!(
            effects[0],
            BrokerEffect::Reply {
                event: ClientEvent::ProduceAck { offset: 0 },
                ..
            }
        ));
        assert_eq!(b.high_watermark(), 1);
    }

    #[test]
    fn hw_waits_for_isr_replication() {
        let mut leader = leader_with_replicas(&[1, 2, 3]);
        // Followers join the ISR by fetching at log-end 0.
        leader.step(BrokerMsg::Fetch { from: 2, offset: 0 });
        leader.step(BrokerMsg::Fetch { from: 3, offset: 0 });
        assert_eq!(leader.isr(), vec![1, 2, 3]);
        leader.step(BrokerMsg::Produce {
            reply_to: 1,
            record: Record::payload(b"a".to_vec()),
        });
        // Not consumable yet: followers haven't replicated offset 1.
        assert_eq!(leader.high_watermark(), 0);
        leader.step(BrokerMsg::Fetch { from: 2, offset: 1 });
        assert_eq!(leader.high_watermark(), 0, "only one of two followers");
        leader.step(BrokerMsg::Fetch { from: 3, offset: 1 });
        assert_eq!(leader.high_watermark(), 1, "all ISR replicated");
    }

    #[test]
    fn consume_is_bounded_by_hw() {
        let mut leader = leader_with_replicas(&[1, 2]);
        leader.step(BrokerMsg::Fetch { from: 2, offset: 0 });
        leader.step(BrokerMsg::Produce {
            reply_to: 1,
            record: Record::payload(b"a".to_vec()),
        });
        let effects = leader.step(BrokerMsg::Consume {
            reply_to: 9,
            offset: 0,
        });
        match &effects[0] {
            BrokerEffect::Reply {
                event:
                    ClientEvent::ConsumeBatch {
                        records,
                        high_watermark,
                        ..
                    },
                ..
            } => {
                assert!(records.is_empty(), "record above HW must not be served");
                assert_eq!(*high_watermark, 0);
            }
            other => panic!("unexpected effect {other:?}"),
        }
        // After replication it becomes consumable.
        leader.step(BrokerMsg::Fetch { from: 2, offset: 1 });
        let effects = leader.step(BrokerMsg::Consume {
            reply_to: 9,
            offset: 0,
        });
        match &effects[0] {
            BrokerEffect::Reply {
                event: ClientEvent::ConsumeBatch { records, .. },
                ..
            } => assert_eq!(records.len(), 1),
            other => panic!("unexpected effect {other:?}"),
        }
    }

    #[test]
    fn follower_replicates_via_fetch_response() {
        let mut f = Broker::new(2, KafkaConfig::default());
        f.step(BrokerMsg::AppointFollower {
            epoch: 1,
            leader: 1,
        });
        let fetches = f.tick();
        assert_eq!(
            fetches,
            vec![BrokerEffect::Send {
                to: 1,
                message: BrokerMsg::Fetch { from: 2, offset: 0 }
            }]
        );
        f.step(BrokerMsg::FetchResponse {
            epoch: 1,
            records: vec![
                Record::payload(b"a".to_vec()),
                Record::payload(b"b".to_vec()),
            ],
            base_offset: 0,
            high_watermark: 1,
        });
        assert_eq!(f.log_end(), 2);
        assert_eq!(f.high_watermark(), 1);
    }

    #[test]
    fn stale_epoch_fetch_response_ignored() {
        let mut f = Broker::new(2, KafkaConfig::default());
        f.step(BrokerMsg::AppointFollower {
            epoch: 5,
            leader: 1,
        });
        f.step(BrokerMsg::FetchResponse {
            epoch: 4,
            records: vec![Record::payload(b"stale".to_vec())],
            base_offset: 0,
            high_watermark: 1,
        });
        assert_eq!(f.log_end(), 0);
    }

    #[test]
    fn laggard_is_shrunk_from_isr() {
        let cfg = KafkaConfig {
            isr_lag_ticks: 3,
            ..KafkaConfig::default()
        };
        let mut leader = Broker::new(1, cfg);
        leader.step(BrokerMsg::AppointLeader {
            epoch: 1,
            replicas: vec![1, 2],
        });
        leader.step(BrokerMsg::Fetch { from: 2, offset: 0 });
        assert_eq!(leader.isr(), vec![1, 2]);
        leader.step(BrokerMsg::Produce {
            reply_to: 1,
            record: Record::payload(b"a".to_vec()),
        });
        assert_eq!(leader.high_watermark(), 0, "follower 2 now lags");
        // Follower 2 never fetches again: after isr_lag_ticks it is dropped
        // and the HW advances without it.
        let mut isr_updates = 0;
        for _ in 0..5 {
            for e in leader.tick() {
                if matches!(e, BrokerEffect::IsrUpdate { .. }) {
                    isr_updates += 1;
                }
            }
        }
        assert_eq!(isr_updates, 1);
        assert_eq!(leader.isr(), vec![1]);
        assert_eq!(leader.high_watermark(), 1);
    }

    #[test]
    fn new_leader_keeps_its_log_and_rebuilds_isr() {
        // Follower 2 has replicated 2 records, then gets appointed leader.
        let mut f = Broker::new(2, KafkaConfig::default());
        f.step(BrokerMsg::AppointFollower {
            epoch: 1,
            leader: 1,
        });
        f.step(BrokerMsg::FetchResponse {
            epoch: 1,
            records: vec![
                Record::payload(b"a".to_vec()),
                Record::payload(b"b".to_vec()),
            ],
            base_offset: 0,
            high_watermark: 2,
        });
        f.step(BrokerMsg::AppointLeader {
            epoch: 2,
            replicas: vec![2, 3],
        });
        assert_eq!(f.role(), &BrokerRole::Leader);
        assert_eq!(f.log_end(), 2);
        assert_eq!(f.isr(), vec![2]);
        assert_eq!(f.high_watermark(), 2, "solo-ISR HW covers its own log");
    }

    #[test]
    fn timer_marker_records() {
        assert!(Record::timer_marker().is_timer_marker);
        assert!(!Record::payload(b"x".to_vec()).is_timer_marker);
    }
}
