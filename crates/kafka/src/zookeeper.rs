//! The ZooKeeper-like coordination ensemble: broker sessions, partition
//! leadership and ISR registry.
//!
//! Modelled as one logical replicated service with `members` replicas; its
//! operations (session tracking, leader election) proceed only while a
//! majority of replicas is alive — the property Fabric's Kafka orderer
//! actually depends on. Intra-ensemble consensus (ZAB) is abstracted to that
//! quorum rule; the broker-visible protocol is complete.

use std::collections::BTreeMap;

use crate::{BrokerId, Epoch};

/// Messages brokers send to the ensemble.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZkMsg {
    /// Broker session heartbeat; also registers the broker.
    Heartbeat {
        /// The broker.
        from: BrokerId,
    },
    /// The partition leader reports an ISR change.
    IsrUpdate {
        /// Reporting broker (must be the current leader to be accepted).
        from: BrokerId,
        /// New ISR.
        isr: Vec<BrokerId>,
    },
}

/// Effects the ensemble asks the host to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZkEffect {
    /// Appoint `broker` as partition leader for `epoch` over `replicas`.
    AppointLeader {
        /// The new leader.
        broker: BrokerId,
        /// New epoch.
        epoch: Epoch,
        /// The partition's replica set.
        replicas: Vec<BrokerId>,
    },
    /// Tell `broker` to follow `leader` at `epoch`.
    AppointFollower {
        /// The follower being (re)pointed.
        broker: BrokerId,
        /// The leader to follow.
        leader: BrokerId,
        /// New epoch.
        epoch: Epoch,
    },
}

/// The coordination ensemble.
#[derive(Debug, Clone)]
pub struct ZkEnsemble {
    members: usize,
    member_alive: Vec<bool>,
    session_timeout_ticks: u32,
    // Broker sessions: ticks since last heartbeat.
    sessions: BTreeMap<BrokerId, u32>,
    replicas: Vec<BrokerId>,
    isr: Vec<BrokerId>,
    leader: Option<BrokerId>,
    epoch: Epoch,
}

impl ZkEnsemble {
    /// Creates an ensemble of `members` replicas coordinating the given
    /// partition `replicas` (the brokers hosting the channel's partition).
    ///
    /// # Panics
    /// Panics if `members == 0` or `replicas` is empty.
    pub fn new(members: usize, replicas: Vec<BrokerId>, session_timeout_ticks: u32) -> Self {
        assert!(members > 0, "ensemble needs members");
        assert!(!replicas.is_empty(), "partition needs replicas");
        ZkEnsemble {
            members,
            member_alive: vec![true; members],
            session_timeout_ticks,
            sessions: BTreeMap::new(),
            isr: replicas.clone(),
            replicas,
            leader: None,
            epoch: 0,
        }
    }

    /// Number of ensemble members.
    pub fn members(&self) -> usize {
        self.members
    }

    /// Current partition leader, if appointed.
    pub fn leader(&self) -> Option<BrokerId> {
        self.leader
    }

    /// Current leadership epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The registered ISR.
    pub fn isr(&self) -> &[BrokerId] {
        &self.isr
    }

    /// Marks an ensemble member up/down (fault injection).
    ///
    /// # Panics
    /// Panics if `member` is out of range.
    pub fn set_member_alive(&mut self, member: usize, alive: bool) {
        self.member_alive[member] = alive;
    }

    /// True while a majority of ensemble replicas is alive; all coordination
    /// stalls otherwise.
    pub fn has_quorum(&self) -> bool {
        self.member_alive.iter().filter(|&&a| a).count() * 2 > self.members
    }

    /// Processes a broker message.
    pub fn step(&mut self, message: ZkMsg) -> Vec<ZkEffect> {
        if !self.has_quorum() {
            return Vec::new();
        }
        let mut effects = Vec::new();
        match message {
            ZkMsg::Heartbeat { from } => {
                let is_new = !self.sessions.contains_key(&from);
                self.sessions.insert(from, 0);
                match self.leader {
                    None => self.elect(&mut effects),
                    Some(leader) if is_new && self.replicas.contains(&from) && from != leader => {
                        // A (re)joining replica gets pointed at the current leader.
                        effects.push(ZkEffect::AppointFollower {
                            broker: from,
                            leader,
                            epoch: self.epoch,
                        });
                    }
                    Some(_) => {}
                }
            }
            ZkMsg::IsrUpdate { from, isr } => {
                if Some(from) == self.leader {
                    self.isr = isr;
                }
            }
        }
        effects
    }

    /// Ages sessions; expires dead brokers and re-elects if the leader died.
    pub fn tick(&mut self) -> Vec<ZkEffect> {
        if !self.has_quorum() {
            return Vec::new();
        }
        let mut effects = Vec::new();
        let mut expired = Vec::new();
        for (&b, age) in self.sessions.iter_mut() {
            *age += 1;
            if *age > self.session_timeout_ticks {
                expired.push(b);
            }
        }
        for b in expired {
            self.sessions.remove(&b);
            self.isr.retain(|&r| r != b);
            if self.leader == Some(b) {
                self.leader = None;
                self.elect(&mut effects);
            }
        }
        effects
    }

    fn elect(&mut self, effects: &mut Vec<ZkEffect>) {
        // Prefer ISR members with live sessions; fall back to any live replica
        // (Kafka's "unclean" election — acceptable here because fabricsim
        // followers truncate to the new leader's log).
        let candidate = self
            .isr
            .iter()
            .copied()
            .find(|b| self.sessions.contains_key(b))
            .or_else(|| {
                self.replicas
                    .iter()
                    .copied()
                    .find(|b| self.sessions.contains_key(b))
            });
        let Some(leader) = candidate else { return };
        self.epoch += 1;
        self.leader = Some(leader);
        effects.push(ZkEffect::AppointLeader {
            broker: leader,
            epoch: self.epoch,
            replicas: self.replicas.clone(),
        });
        for &r in &self.replicas {
            if r != leader && self.sessions.contains_key(&r) {
                effects.push(ZkEffect::AppointFollower {
                    broker: r,
                    leader,
                    epoch: self.epoch,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heartbeat_all(zk: &mut ZkEnsemble, brokers: &[BrokerId]) -> Vec<ZkEffect> {
        brokers
            .iter()
            .flat_map(|&b| zk.step(ZkMsg::Heartbeat { from: b }))
            .collect()
    }

    #[test]
    fn first_heartbeat_triggers_election() {
        let mut zk = ZkEnsemble::new(3, vec![1, 2, 3], 5);
        let effects = heartbeat_all(&mut zk, &[1, 2, 3]);
        assert_eq!(zk.leader(), Some(1), "first ISR member wins");
        assert!(matches!(
            effects[0],
            ZkEffect::AppointLeader {
                broker: 1,
                epoch: 1,
                ..
            }
        ));
        // Later-joining replicas are appointed followers.
        let follower_appointments = effects
            .iter()
            .filter(|e| matches!(e, ZkEffect::AppointFollower { leader: 1, .. }))
            .count();
        assert_eq!(follower_appointments, 2);
    }

    #[test]
    fn session_expiry_fails_over_to_isr_member() {
        let mut zk = ZkEnsemble::new(3, vec![1, 2, 3], 3);
        heartbeat_all(&mut zk, &[1, 2, 3]);
        assert_eq!(zk.leader(), Some(1));
        // Broker 1 stops heartbeating; 2 and 3 keep their sessions fresh.
        let mut effects = Vec::new();
        for _ in 0..10 {
            effects.extend(zk.tick());
            effects.extend(heartbeat_all(&mut zk, &[2, 3]));
        }
        assert_eq!(zk.leader(), Some(2), "failover to the next ISR member");
        assert!(effects.iter().any(|e| matches!(
            e,
            ZkEffect::AppointLeader {
                broker: 2,
                epoch: 2,
                ..
            }
        )));
    }

    #[test]
    fn no_quorum_no_elections() {
        let mut zk = ZkEnsemble::new(3, vec![1, 2], 3);
        zk.set_member_alive(0, false);
        zk.set_member_alive(1, false);
        assert!(!zk.has_quorum());
        let effects = heartbeat_all(&mut zk, &[1, 2]);
        assert!(effects.is_empty());
        assert_eq!(zk.leader(), None);
        // Quorum restored: coordination resumes.
        zk.set_member_alive(0, true);
        let effects = heartbeat_all(&mut zk, &[1]);
        assert!(zk.has_quorum());
        assert!(!effects.is_empty());
        assert_eq!(zk.leader(), Some(1));
    }

    #[test]
    fn isr_updates_only_from_leader() {
        let mut zk = ZkEnsemble::new(3, vec![1, 2, 3], 5);
        heartbeat_all(&mut zk, &[1, 2, 3]);
        zk.step(ZkMsg::IsrUpdate {
            from: 2,
            isr: vec![2],
        });
        assert_eq!(zk.isr(), &[1, 2, 3], "non-leader ISR update ignored");
        zk.step(ZkMsg::IsrUpdate {
            from: 1,
            isr: vec![1, 2],
        });
        assert_eq!(zk.isr(), &[1, 2]);
    }

    #[test]
    fn expired_leader_out_of_isr_falls_back_to_any_live_replica() {
        let mut zk = ZkEnsemble::new(3, vec![1, 2], 2);
        heartbeat_all(&mut zk, &[1]);
        assert_eq!(zk.leader(), Some(1));
        // Leader 1 reports solo ISR, then dies; only non-ISR broker 2 is live.
        zk.step(ZkMsg::IsrUpdate {
            from: 1,
            isr: vec![1],
        });
        for _ in 0..5 {
            zk.tick();
            zk.step(ZkMsg::Heartbeat { from: 2 });
        }
        assert_eq!(zk.leader(), Some(2), "unclean election to live replica");
    }

    #[test]
    fn rejoining_broker_is_pointed_at_leader() {
        let mut zk = ZkEnsemble::new(3, vec![1, 2], 3);
        heartbeat_all(&mut zk, &[1]);
        assert_eq!(zk.leader(), Some(1));
        let effects = zk.step(ZkMsg::Heartbeat { from: 2 });
        assert_eq!(
            effects,
            vec![ZkEffect::AppointFollower {
                broker: 2,
                leader: 1,
                epoch: 1
            }]
        );
    }
}
