//! # fabricsim-kafka — a Kafka-like replicated log with ZooKeeper coordination
//!
//! The Kafka ordering service of Hyperledger Fabric (paper §III) rests on two
//! components: **brokers** hosting a partitioned, replicated log, and a
//! **ZooKeeper ensemble** providing leader election, membership management and
//! session tracking. This crate implements both as deterministic state
//! machines in the same style as [`fabricsim-raft`]: the host calls
//! [`Broker::step`] / [`Broker::tick`] / [`ZkEnsemble::tick`] and acts on the
//! returned effects.
//!
//! Modelled faithfully (because the paper's findings depend on them):
//!
//! * one partition per channel (the paper's default `partition = 1`);
//! * a configurable **replication factor** (paper default 3);
//! * **in-sync replicas** (ISR): followers *pull* via fetch requests, the
//!   leader advances the high watermark once every ISR member has replicated,
//!   and laggards are shrunk out of the ISR;
//! * a record is visible to consumers only up to the high watermark — this is
//!   the "in-sync replica latency" the paper discusses;
//! * broker sessions expire at ZooKeeper, which then appoints a new partition
//!   leader from the ISR (leader failover), but only while a majority of the
//!   ensemble is alive.
//!
//! [`fabricsim-raft`]: ../fabricsim_raft/index.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod broker;
mod zookeeper;

pub use broker::{Broker, BrokerEffect, BrokerMsg, BrokerRole, ClientEvent, KafkaConfig, Record};
pub use zookeeper::{ZkEffect, ZkEnsemble, ZkMsg};

/// Broker identifier within the cluster.
pub type BrokerId = u32;
/// Opaque reply-to token identifying a producer/consumer client.
pub type ClientToken = u64;
/// Offset into the partition log (0-based).
pub type Offset = u64;
/// Leadership epoch, bumped by ZooKeeper on every leader change.
pub type Epoch = u64;
